//! `synthesize`: run the full pipeline on a CSV corpus directory,
//! write the synthesized mapping tables as TSV files, and publish them
//! into a versioned serving snapshot.
//!
//! ```text
//! synthesize <corpus-dir> [--out DIR] [--min-domains N] [--min-pairs N]
//!            [--workers W] [--shards S] [--probe VALUE]...
//!
//! corpus layout: <corpus-dir>/<domain>/<table>.csv  (header row = column names)
//! output:        <out>/mapping-NNNN.tsv  (left \t right), curation-ranked
//!                <out>/index.tsv         (id, pairs, tables, domains)
//! serving:       mappings are published into a mapsynth-serve
//!                MappingService; each --probe VALUE is answered from
//!                the served snapshot (mappings containing it + its
//!                translations).
//! ```

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_corpus::load_csv_dir;
use mapsynth_serve::{MappingService, SnapshotBuilder};
use std::io::Write;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut corpus_dir: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("mappings");
    let mut min_domains = 1usize;
    let mut min_pairs = 3usize;
    let mut workers = 0usize;
    let mut shards = mapsynth_serve::DEFAULT_SHARDS;
    let mut probes: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a value"));
            }
            "--min-domains" => {
                i += 1;
                min_domains = args
                    .get(i)
                    .expect("--min-domains needs a value")
                    .parse()
                    .unwrap();
            }
            "--min-pairs" => {
                i += 1;
                min_pairs = args
                    .get(i)
                    .expect("--min-pairs needs a value")
                    .parse()
                    .unwrap();
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .expect("--workers needs a value")
                    .parse()
                    .unwrap();
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .expect("--shards needs a value")
                    .parse()
                    .unwrap();
            }
            "--probe" => {
                i += 1;
                probes.push(args.get(i).expect("--probe needs a value").clone());
            }
            other if !other.starts_with("--") && corpus_dir.is_none() => {
                corpus_dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(corpus_dir) = corpus_dir else {
        eprintln!(
            "usage: synthesize <corpus-dir> [--out DIR] [--min-domains N] [--min-pairs N] \
             [--workers W] [--shards S] [--probe VALUE]..."
        );
        std::process::exit(2);
    };

    let corpus = match load_csv_dir(&corpus_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to load corpus from {}: {e}", corpus_dir.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "loaded {} tables from {} domains",
        corpus.len(),
        corpus.domain_names.len()
    );

    let pipeline = Pipeline::new(PipelineConfig {
        workers,
        ..Default::default()
    });
    let output = pipeline.run(&corpus);
    eprintln!(
        "{} candidates -> {} edges ({} negative) -> {} mappings in {:.2?}",
        output.candidates,
        output.edges,
        output.negative_edges,
        output.mappings.len(),
        output.timings.total
    );

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let mut index = std::fs::File::create(out_dir.join("index.tsv")).expect("create index");
    writeln!(index, "id\tpairs\ttables\tdomains").unwrap();
    // Every exported mapping enters the serving snapshot as it is
    // written, labelled with its export filename, so probe answers
    // point at the exact TSV a mapping landed in.
    let mut builder = SnapshotBuilder::with_shards(shards);
    let mut written = 0usize;
    for (mi, m) in output.mappings.iter().enumerate() {
        if m.domains < min_domains || m.len() < min_pairs {
            continue;
        }
        let name = format!("mapping-{mi:04}.tsv");
        let mut f = std::fs::File::create(out_dir.join(&name)).expect("create mapping file");
        for (l, r) in m.pair_strs() {
            writeln!(f, "{l}\t{r}").unwrap();
        }
        writeln!(
            index,
            "{mi}\t{}\t{}\t{}",
            m.len(),
            m.source_tables,
            m.domains
        )
        .unwrap();
        builder.add_synthesized_named(Some(name), m);
        written += 1;
    }
    eprintln!("wrote {written} mapping tables to {}", out_dir.display());

    // Publish the run into the serving layer: applications hold the
    // service handle and keep answering from their snapshot while
    // later runs publish newer versions.
    let service = MappingService::new();
    let version = service.publish(builder.build());
    let snap = service.snapshot();
    eprintln!(
        "serving snapshot v{version}: {} mappings, {} values across {} shards",
        snap.mapping_count(),
        snap.value_count(),
        snap.shard_count(),
    );
    let label = |mi: u32| {
        snap.meta(mi)
            .name
            .clone()
            .unwrap_or_else(|| format!("#{mi}"))
    };
    for probe in &probes {
        match snap.lookup(probe) {
            None => println!("probe {probe:?}: not served"),
            Some(hit) => {
                let mappings: Vec<String> = hit.mappings().iter().map(|&mi| label(mi)).collect();
                let translations: Vec<String> = hit
                    .translations()
                    .map(|(mi, r)| format!("{}->{r:?}", label(mi)))
                    .collect();
                println!(
                    "probe {probe:?}: mappings [{}], translations [{}]",
                    mappings.join(", "),
                    translations.join(", "),
                );
            }
        }
    }
}
