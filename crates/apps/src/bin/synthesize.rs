//! `synthesize`: run the full pipeline on a CSV corpus directory and
//! write the synthesized mapping tables as TSV files.
//!
//! ```text
//! synthesize <corpus-dir> [--out DIR] [--min-domains N] [--min-pairs N] [--workers W]
//!
//! corpus layout: <corpus-dir>/<domain>/<table>.csv  (header row = column names)
//! output:        <out>/mapping-NNNN.tsv  (left \t right), curation-ranked
//!                <out>/index.tsv         (id, pairs, tables, domains)
//! ```

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_corpus::load_csv_dir;
use std::io::Write;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut corpus_dir: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("mappings");
    let mut min_domains = 1usize;
    let mut min_pairs = 3usize;
    let mut workers = 0usize;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).expect("--out needs a value"));
            }
            "--min-domains" => {
                i += 1;
                min_domains = args
                    .get(i)
                    .expect("--min-domains needs a value")
                    .parse()
                    .unwrap();
            }
            "--min-pairs" => {
                i += 1;
                min_pairs = args
                    .get(i)
                    .expect("--min-pairs needs a value")
                    .parse()
                    .unwrap();
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .expect("--workers needs a value")
                    .parse()
                    .unwrap();
            }
            other if !other.starts_with("--") && corpus_dir.is_none() => {
                corpus_dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(corpus_dir) = corpus_dir else {
        eprintln!(
            "usage: synthesize <corpus-dir> [--out DIR] [--min-domains N] [--min-pairs N] [--workers W]"
        );
        std::process::exit(2);
    };

    let corpus = match load_csv_dir(&corpus_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to load corpus from {}: {e}", corpus_dir.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "loaded {} tables from {} domains",
        corpus.len(),
        corpus.domain_names.len()
    );

    let pipeline = Pipeline::new(PipelineConfig {
        workers,
        ..Default::default()
    });
    let output = pipeline.run(&corpus);
    eprintln!(
        "{} candidates -> {} edges ({} negative) -> {} mappings in {:.2?}",
        output.candidates,
        output.edges,
        output.negative_edges,
        output.mappings.len(),
        output.timings.total
    );

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let mut index = std::fs::File::create(out_dir.join("index.tsv")).expect("create index");
    writeln!(index, "id\tpairs\ttables\tdomains").unwrap();
    let mut written = 0usize;
    for (mi, m) in output.mappings.iter().enumerate() {
        if m.domains < min_domains || m.len() < min_pairs {
            continue;
        }
        let name = format!("mapping-{mi:04}.tsv");
        let mut f = std::fs::File::create(out_dir.join(&name)).expect("create mapping file");
        for (l, r) in m.pair_strs() {
            writeln!(f, "{l}\t{r}").unwrap();
        }
        writeln!(
            index,
            "{mi}\t{}\t{}\t{}",
            m.len(),
            m.source_tables,
            m.domains
        )
        .unwrap();
        written += 1;
    }
    eprintln!("wrote {written} mapping tables to {}", out_dir.display());
}
