//! Auto-join (paper §1, Table 5).
//!
//! Two tables whose key columns use different representations — stock
//! tickers on one side, company names on the other — are joined through
//! a bridge mapping in a three-way join, without the user supplying the
//! correspondence.

use mapsynth_serve::MappingStore;
use mapsynth_text::normalize;

/// Result of an auto-join.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinResult {
    /// Index of the bridge mapping used.
    pub mapping: u32,
    /// Whether the left table's keys matched the mapping's left side
    /// (`true`) or its right side (`false`).
    pub left_keys_on_left: bool,
    /// Joined row pairs `(left row, right row)`.
    pub rows: Vec<(usize, usize)>,
}

/// Join `left_keys` to `right_keys` through the best bridge mapping.
///
/// A bridge qualifies when at least `min_coverage` (fraction) of each
/// side's keys appear on opposite sides of the mapping. Returns the
/// join with the most matched rows. Works against any
/// [`MappingStore`] — the local `MappingIndex` or a served snapshot.
pub fn autojoin<S: MappingStore + ?Sized>(
    store: &S,
    left_keys: &[&str],
    right_keys: &[&str],
    min_coverage: f64,
) -> Option<JoinResult> {
    let ln: Vec<String> = left_keys.iter().map(|k| normalize(k)).collect();
    let rn: Vec<String> = right_keys.iter().map(|k| normalize(k)).collect();

    let mut candidates: Vec<u32> = store
        .rank_by_containment(left_keys)
        .into_iter()
        .map(|(mi, _)| mi)
        .collect();
    candidates.dedup();

    let mut best: Option<JoinResult> = None;
    for mi in candidates {
        for orientation in [true, false] {
            // orientation=true: left table keys ↔ mapping lefts,
            // right table keys ↔ mapping rights.
            let (l_cov, r_cov) = if orientation {
                (
                    ln.iter().filter(|k| store.contains_left(mi, k)).count(),
                    rn.iter().filter(|k| store.contains_right(mi, k)).count(),
                )
            } else {
                (
                    ln.iter().filter(|k| store.contains_right(mi, k)).count(),
                    rn.iter().filter(|k| store.contains_left(mi, k)).count(),
                )
            };
            if (l_cov as f64) < min_coverage * ln.len() as f64
                || (r_cov as f64) < min_coverage * rn.len() as f64
            {
                continue;
            }
            // Three-way join: left key → bridge → right key.
            let mut right_rows: std::collections::HashMap<&str, Vec<usize>> =
                std::collections::HashMap::new();
            for (i, k) in rn.iter().enumerate() {
                right_rows.entry(k.as_str()).or_default().push(i);
            }
            let mut rows = Vec::new();
            let join_to = |li: usize, t: &str, rows: &mut Vec<(usize, usize)>| {
                if let Some(ris) = right_rows.get(t) {
                    for &ri in ris {
                        rows.push((li, ri));
                    }
                }
            };
            for (li, lk) in ln.iter().enumerate() {
                if orientation {
                    if let Some(t) = store.forward(mi, lk) {
                        join_to(li, t, &mut rows);
                    }
                } else {
                    for t in store.reverse(mi, lk) {
                        join_to(li, t, &mut rows);
                    }
                }
            }
            if rows.is_empty() {
                continue;
            }
            if best.as_ref().is_none_or(|b| rows.len() > b.rows.len()) {
                best = Some(JoinResult {
                    mapping: mi,
                    left_keys_on_left: orientation,
                    rows,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::MappingIndex;

    fn index() -> MappingIndex {
        MappingIndex::from_named_raw(vec![(
            "ticker->company".into(),
            vec![
                ("GE".into(), "General Electric".into()),
                ("WMT".into(), "Walmart".into()),
                ("MSFT".into(), "Microsoft Corp.".into()),
                ("ORCL".into(), "Oracle".into()),
                ("UPS".into(), "AT&T Inc.".into()),
            ],
        )])
    }

    #[test]
    fn paper_table_5_scenario() {
        // Left: stocks by ticker; right: companies by name (Table 5).
        let idx = index();
        let left = ["GE", "WMT", "MSFT", "ORCL", "UPS"];
        let right = [
            "General Electric",
            "Walmart",
            "Oracle",
            "Microsoft Corp.",
            "AT&T Inc.",
        ];
        let join = autojoin(&idx, &left, &right, 0.5).expect("bridge found");
        assert!(join.left_keys_on_left);
        assert_eq!(join.rows.len(), 5);
        // GE (row 0) must join General Electric (row 0); MSFT (2) ↔
        // Microsoft (3).
        assert!(join.rows.contains(&(0, 0)));
        assert!(join.rows.contains(&(2, 3)));
    }

    #[test]
    fn reversed_orientation_detected() {
        let idx = index();
        let left = ["General Electric", "Walmart"];
        let right = ["GE", "WMT", "MSFT"];
        let join = autojoin(&idx, &left, &right, 0.5).expect("bridge found");
        assert!(!join.left_keys_on_left);
        assert_eq!(join.rows.len(), 2);
    }

    #[test]
    fn insufficient_coverage_rejected() {
        let idx = index();
        let left = ["GE", "banana", "apple", "pear"];
        let right = ["General Electric", "kiwi", "mango", "plum"];
        assert!(autojoin(&idx, &left, &right, 0.5).is_none());
    }
}
