//! Auto-correction (paper §1, Table 3).
//!
//! A column mixing representations — full state names with postal
//! abbreviations — is detected by finding a mapping whose left *and*
//! right values both appear in the column; the minority side is
//! corrected to the majority side through the mapping.

use mapsynth_serve::MappingStore;
use mapsynth_text::normalize;

/// One suggested correction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Correction {
    /// Row index in the input column.
    pub row: usize,
    /// The inconsistent value as given.
    pub from: String,
    /// The suggested replacement (majority representation).
    pub to: String,
}

/// Detect mixed representations in `column` and suggest corrections.
///
/// Returns `None` when no indexed mapping exhibits a meaningful mix
/// (at least `min_side` values on each side). Works against any
/// [`MappingStore`] — the local `MappingIndex` or a served snapshot.
pub fn autocorrect<S: MappingStore + ?Sized>(
    store: &S,
    column: &[&str],
    min_side: usize,
) -> Option<Vec<Correction>> {
    let normalized: Vec<String> = column.iter().map(|v| normalize(v)).collect();
    // Candidate mappings by containment.
    let ranked = store.rank_by_containment(column);
    for (mi, _count) in ranked {
        let (l, r, _none) = store.coverage(mi, &normalized);
        if l < min_side || r < min_side {
            continue; // not mixed under this mapping
        }
        // Correct toward the majority side.
        let to_left = l >= r;
        let mut out = Vec::new();
        for (row, v) in normalized.iter().enumerate() {
            if to_left {
                // minority values are rights → replace with their left.
                if !store.contains_left(mi, v) {
                    if let Some(left) = store.reverse(mi, v).first() {
                        out.push(Correction {
                            row,
                            from: column[row].to_string(),
                            to: left.clone(),
                        });
                    }
                }
            } else if !store.contains_right(mi, v) {
                if let Some(right) = store.forward(mi, v) {
                    out.push(Correction {
                        row,
                        from: column[row].to_string(),
                        to: right.to_string(),
                    });
                }
            }
        }
        if !out.is_empty() {
            return Some(out);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::MappingIndex;

    fn index() -> MappingIndex {
        MappingIndex::from_named_raw(vec![(
            "state->abbr".into(),
            vec![
                ("California".into(), "CA".into()),
                ("Washington".into(), "WA".into()),
                ("Oregon".into(), "OR".into()),
                ("Texas".into(), "TX".into()),
            ],
        )])
    }

    #[test]
    fn paper_table_3_scenario() {
        // Residence State column with mixed full names and
        // abbreviations (paper Table 3).
        let idx = index();
        let column = ["California", "Washington", "Oregon", "CA", "WA"];
        let fixes = autocorrect(&idx, &column, 2).expect("mix detected");
        assert_eq!(
            fixes,
            vec![
                Correction {
                    row: 3,
                    from: "CA".into(),
                    to: "california".into()
                },
                Correction {
                    row: 4,
                    from: "WA".into(),
                    to: "washington".into()
                },
            ]
        );
    }

    #[test]
    fn corrects_toward_majority_side() {
        let idx = index();
        // Majority abbreviations → full names become the errors.
        let column = ["CA", "WA", "OR", "Texas"];
        let fixes = autocorrect(&idx, &column, 1).expect("mix detected");
        assert_eq!(fixes.len(), 1);
        assert_eq!(fixes[0].from, "Texas");
        assert_eq!(fixes[0].to, "tx");
    }

    #[test]
    fn consistent_column_is_clean() {
        let idx = index();
        let column = ["California", "Washington", "Oregon"];
        assert!(autocorrect(&idx, &column, 1).is_none());
    }

    #[test]
    fn unknown_values_ignored() {
        let idx = index();
        let column = ["banana", "apple", "pear"];
        assert!(autocorrect(&idx, &column, 1).is_none());
    }
}
