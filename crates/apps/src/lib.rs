//! # mapsynth-apps
//!
//! The applications that motivate mapping synthesis (paper §1):
//!
//! * [`index::MappingIndex`] — synthesized mappings materialized behind
//!   hash maps and Bloom filters for efficient containment lookup
//!   ("one could index synthesized mapping tables using hash-based
//!   techniques (e.g., bloom filters) for efficient lookup based on
//!   value containment");
//! * [`autocorrect`](mod@autocorrect) — detect and fix mixed representations in a
//!   column (paper Table 3: full state names mixed with abbreviations);
//! * [`autofill`](mod@autofill) — complete a column from a few example pairs (paper
//!   Table 4);
//! * [`autojoin`](mod@autojoin) — join two tables whose key columns use different
//!   representations through a bridge mapping (paper Table 5).
//!
//! The applications are generic over
//! [`mapsynth_serve::MappingStore`], so the same code serves requests
//! from a local [`index::MappingIndex`] **or** from a versioned
//! snapshot handle obtained from a
//! [`mapsynth_serve::MappingService`] — the concurrent serving path
//! for heavy traffic.

pub mod autocorrect;
pub mod autofill;
pub mod autojoin;
pub mod index;

pub use autocorrect::{autocorrect, Correction};
pub use autofill::{autofill, FillResult};
pub use autojoin::{autojoin, JoinResult};
pub use index::{MappingHandle, MappingIndex};
// The Bloom filter moved to the serving crate; re-exported here for
// source compatibility with pre-serve callers.
pub use mapsynth_serve::{bloom, BloomFilter, MappingStore};
