//! Materialized mapping index.
//!
//! Synthesized mappings become data assets only when applications can
//! find the right one fast. The index answers "which mappings contain
//! these values (as left values, right values, or a mix)?" with a
//! Bloom-filter prefilter per mapping and exact hash maps behind it —
//! the simple, scalable lookup structure the paper argues for in §1
//! ("why pre-compute mappings").

use mapsynth::SynthesizedMapping;
use mapsynth_serve::{BloomFilter, MappingStore};
use mapsynth_text::normalize;
use std::collections::{HashMap, HashSet};

/// One materialized mapping table.
pub struct MappingHandle {
    /// Optional human label.
    pub name: Option<String>,
    /// left → right (first winner per left; mappings are conflict-free
    /// after resolution, so this is total).
    pub forward: HashMap<String, String>,
    /// right → lefts (non-unique for N:1 mappings).
    pub reverse: HashMap<String, Vec<String>>,
    /// All left values.
    pub lefts: HashSet<String>,
    /// All right values.
    pub rights: HashSet<String>,
    bloom: BloomFilter,
}

impl MappingHandle {
    /// Materialize a handle from borrowed normalized pairs — the one
    /// place synthesized mappings turn into owned index strings.
    fn build<'a, I: IntoIterator<Item = (&'a str, &'a str)>>(
        name: Option<String>,
        pairs: I,
    ) -> Self {
        let pairs: Vec<(&str, &str)> = pairs.into_iter().collect();
        let mut forward = HashMap::new();
        let mut reverse: HashMap<String, Vec<String>> = HashMap::new();
        let mut lefts = HashSet::new();
        let mut rights = HashSet::new();
        let mut bloom = BloomFilter::new(pairs.len() * 2, 0.01);
        for (l, r) in pairs {
            forward
                .entry(l.to_string())
                .or_insert_with(|| r.to_string());
            reverse
                .entry(r.to_string())
                .or_default()
                .push(l.to_string());
            lefts.insert(l.to_string());
            rights.insert(r.to_string());
            bloom.insert(l);
            bloom.insert(r);
        }
        Self {
            name,
            forward,
            reverse,
            lefts,
            rights,
            bloom,
        }
    }

    /// Number of distinct left values.
    pub fn len(&self) -> usize {
        self.lefts.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.lefts.is_empty()
    }

    /// How the given normalized values are covered by this mapping:
    /// `(as lefts, as rights, uncovered)`.
    pub fn coverage(&self, values: &[String]) -> (usize, usize, usize) {
        let mut l = 0;
        let mut r = 0;
        let mut none = 0;
        for v in values {
            // Bloom prefilter: definitely-absent values skip the hash
            // lookups entirely.
            if !self.bloom.may_contain(v) {
                none += 1;
                continue;
            }
            let in_l = self.lefts.contains(v);
            let in_r = self.rights.contains(v);
            match (in_l, in_r) {
                (true, _) => l += 1,
                (false, true) => r += 1,
                (false, false) => none += 1,
            }
        }
        (l, r, none)
    }
}

/// The mapping index: all materialized mappings plus value→mapping
/// posting lists.
pub struct MappingIndex {
    /// Materialized mappings.
    pub mappings: Vec<MappingHandle>,
    /// Normalized value → mapping ids containing it (left or right).
    postings: HashMap<String, Vec<u32>>,
}

impl MappingIndex {
    /// Build from synthesized mappings: pairs stay interned in the
    /// run's value space until this boundary — the handles read
    /// `(&str, &str)` straight through the mappings' space handles,
    /// with no intermediate `Vec<(String, String)>` clone per mapping.
    pub fn build(mappings: &[SynthesizedMapping]) -> Self {
        Self::from_handles(
            mappings
                .iter()
                .map(|m| MappingHandle::build(None, m.pair_strs()))
                .collect(),
        )
    }

    /// Build from named raw pair sets (normalization applied).
    pub fn from_named_raw(sets: Vec<(String, Vec<(String, String)>)>) -> Self {
        Self::from_handles(
            sets.into_iter()
                .map(|(name, pairs)| {
                    let pairs: Vec<(String, String)> = pairs
                        .into_iter()
                        .map(|(l, r)| (normalize(&l), normalize(&r)))
                        .filter(|(l, r)| !l.is_empty() && !r.is_empty())
                        .collect();
                    MappingHandle::build(
                        Some(name),
                        pairs.iter().map(|(l, r)| (l.as_str(), r.as_str())),
                    )
                })
                .collect(),
        )
    }

    fn from_handles(handles: Vec<MappingHandle>) -> Self {
        let mut postings: HashMap<String, Vec<u32>> = HashMap::new();
        for (mi, handle) in handles.iter().enumerate() {
            for v in handle.lefts.iter().chain(handle.rights.iter()) {
                let posting = postings.entry(v.clone()).or_default();
                if posting.last() != Some(&(mi as u32)) {
                    posting.push(mi as u32);
                }
            }
        }
        Self {
            mappings: handles,
            postings,
        }
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// Mappings containing a value (normalized by the caller).
    pub fn mappings_containing(&self, value: &str) -> &[u32] {
        self.postings.get(value).map_or(&[], Vec::as_slice)
    }

    /// Rank mappings by how many of `values` (raw strings; normalized
    /// here) they contain. Returns `(mapping id, covered count)` sorted
    /// descending, ties by id.
    pub fn rank_by_containment(&self, values: &[&str]) -> Vec<(u32, usize)> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for v in values {
            let n = normalize(v);
            for &mi in self.mappings_containing(&n) {
                *counts.entry(mi).or_default() += 1;
            }
        }
        let mut ranked: Vec<(u32, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }
}

/// The build-once index answers the same query surface as a served
/// snapshot, so the applications run unchanged against either.
impl MappingStore for MappingIndex {
    fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    fn rank_by_containment(&self, values: &[&str]) -> Vec<(u32, usize)> {
        MappingIndex::rank_by_containment(self, values)
    }

    fn coverage(&self, mapping: u32, normalized: &[String]) -> (usize, usize, usize) {
        self.mappings[mapping as usize].coverage(normalized)
    }

    fn contains_left(&self, mapping: u32, norm: &str) -> bool {
        self.mappings[mapping as usize].lefts.contains(norm)
    }

    fn contains_right(&self, mapping: u32, norm: &str) -> bool {
        self.mappings[mapping as usize].rights.contains(norm)
    }

    fn forward(&self, mapping: u32, norm: &str) -> Option<&str> {
        self.mappings[mapping as usize]
            .forward
            .get(norm)
            .map(String::as_str)
    }

    fn reverse(&self, mapping: u32, norm: &str) -> &[String] {
        self.mappings[mapping as usize]
            .reverse
            .get(norm)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> MappingIndex {
        MappingIndex::from_named_raw(vec![
            (
                "state->abbr".into(),
                vec![
                    ("California".into(), "CA".into()),
                    ("Washington".into(), "WA".into()),
                    ("Oregon".into(), "OR".into()),
                ],
            ),
            (
                "country->code".into(),
                vec![
                    ("United States".into(), "USA".into()),
                    ("Canada".into(), "CAN".into()),
                ],
            ),
        ])
    }

    #[test]
    fn containment_ranking() {
        let idx = index();
        let ranked = idx.rank_by_containment(&["California", "WA", "Oregon"]);
        assert_eq!(ranked[0].0, 0);
        assert_eq!(ranked[0].1, 3);
    }

    #[test]
    fn coverage_sides() {
        let idx = index();
        let values: Vec<String> = ["california", "wa", "nonsense"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (l, r, none) = idx.mappings[0].coverage(&values);
        assert_eq!((l, r, none), (1, 1, 1));
    }

    #[test]
    fn postings_lookup() {
        let idx = index();
        assert_eq!(idx.mappings_containing("usa"), &[1]);
        assert!(idx.mappings_containing("absent").is_empty());
    }

    #[test]
    fn forward_and_reverse_maps() {
        let idx = index();
        let m = &idx.mappings[0];
        assert_eq!(m.forward["california"], "ca");
        assert_eq!(m.reverse["ca"], vec!["california".to_string()]);
    }
}
