//! Auto-fill (paper §1, Table 4).
//!
//! The user has a filled key column and a few example values in the
//! target column; the system finds a mapping consistent with the
//! examples and fills the rest.

use mapsynth_serve::MappingStore;
use mapsynth_text::normalize;

/// Result of an auto-fill request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FillResult {
    /// Index of the mapping used.
    pub mapping: u32,
    /// `(row, value)` for every previously-empty row that could be
    /// filled.
    pub filled: Vec<(usize, String)>,
}

/// Fill the empty positions of `target` given `keys` and the non-empty
/// examples already present in `target`.
///
/// A mapping qualifies when every given example agrees with it
/// (`key → example` in its forward map) and it covers at least
/// `min_examples` of the examples. Among qualifying mappings the one
/// covering the most keys wins. Works against any [`MappingStore`] —
/// the local `MappingIndex` or a served snapshot.
pub fn autofill<S: MappingStore + ?Sized>(
    store: &S,
    keys: &[&str],
    target: &[Option<&str>],
    min_examples: usize,
) -> Option<FillResult> {
    assert_eq!(keys.len(), target.len(), "columns must align");
    let norm_keys: Vec<String> = keys.iter().map(|k| normalize(k)).collect();
    let examples: Vec<(usize, String)> = target
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| (i, normalize(v))))
        .collect();
    if examples.len() < min_examples {
        return None;
    }

    let ranked = store.rank_by_containment(keys);
    let mut best: Option<(u32, usize)> = None; // (mapping, keys covered)
    for (mi, covered) in ranked {
        // All examples must be consistent with the mapping.
        let consistent = examples
            .iter()
            .all(|(row, ex)| store.forward(mi, &norm_keys[*row]) == Some(ex.as_str()));
        if !consistent {
            continue;
        }
        let hits = examples
            .iter()
            .filter(|(row, _)| store.forward(mi, &norm_keys[*row]).is_some())
            .count();
        if hits < min_examples {
            continue;
        }
        if best.is_none_or(|(_, c)| covered > c) {
            best = Some((mi, covered));
        }
    }
    let (mi, _) = best?;
    let filled: Vec<(usize, String)> = target
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_none())
        .filter_map(|(row, _)| {
            store
                .forward(mi, &norm_keys[row])
                .map(|v| (row, v.to_string()))
        })
        .collect();
    Some(FillResult {
        mapping: mi,
        filled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::MappingIndex;

    fn index() -> MappingIndex {
        MappingIndex::from_named_raw(vec![
            (
                "city->state".into(),
                vec![
                    ("San Francisco".into(), "California".into()),
                    ("Seattle".into(), "Washington".into()),
                    ("Los Angeles".into(), "California".into()),
                    ("Houston".into(), "Texas".into()),
                    ("Denver".into(), "Colorado".into()),
                ],
            ),
            (
                "city->state-abbr".into(),
                vec![
                    ("San Francisco".into(), "CA".into()),
                    ("Seattle".into(), "WA".into()),
                    ("Los Angeles".into(), "CA".into()),
                    ("Houston".into(), "TX".into()),
                    ("Denver".into(), "CO".into()),
                ],
            ),
        ])
    }

    #[test]
    fn paper_table_4_scenario() {
        let idx = index();
        let keys = [
            "San Francisco",
            "Seattle",
            "Los Angeles",
            "Houston",
            "Denver",
        ];
        let target = [Some("California"), None, None, None, None];
        let fill = autofill(&idx, &keys, &target, 1).expect("intent discovered");
        assert_eq!(fill.mapping, 0, "full state names, not abbreviations");
        let values: Vec<&str> = fill.filled.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(
            values,
            vec!["washington", "california", "texas", "colorado"]
        );
    }

    #[test]
    fn examples_disambiguate_mapping() {
        let idx = index();
        let keys = ["San Francisco", "Seattle", "Houston"];
        let target = [Some("CA"), None, None];
        let fill = autofill(&idx, &keys, &target, 1).expect("abbr mapping found");
        assert_eq!(fill.mapping, 1);
        let values: Vec<&str> = fill.filled.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(values, vec!["wa", "tx"]);
    }

    #[test]
    fn contradictory_example_rejects_mapping() {
        let idx = index();
        let keys = ["San Francisco", "Seattle"];
        let target = [Some("Texas"), None];
        assert!(autofill(&idx, &keys, &target, 1).is_none());
    }

    #[test]
    fn too_few_examples() {
        let idx = index();
        let keys = ["San Francisco", "Seattle"];
        let target: [Option<&str>; 2] = [None, None];
        assert!(autofill(&idx, &keys, &target, 1).is_none());
    }
}
