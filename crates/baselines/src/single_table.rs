//! Single-table baselines (`WikiTable`, `WebTable`, `EntTable`, §5.1).
//!
//! No synthesis at all: every candidate table is offered as a
//! relation on its own, and the evaluation picks the best one per
//! benchmark case. `WebTable`/`EntTable` consider every candidate in
//! the corpus (an upper bound no human could realize, as the paper
//! notes); `WikiTable` restricts to candidates from designated
//! reference domains (high-quality, complete, but single-mention
//! tables).

use crate::{union_group, RelationResult};
use mapsynth::values::{NormBinary, ValueSpace};
use mapsynth_corpus::{BinaryTable, Corpus};

/// Every candidate as its own relation (`WebTable` / `EntTable`).
pub fn single_tables(space: &ValueSpace, tables: &[NormBinary]) -> Vec<RelationResult> {
    (0..tables.len() as u32)
        .map(|ti| union_group(space, tables, &[ti]))
        .collect()
}

/// Candidates restricted to domains matching `domain_pred`
/// (`WikiTable`: the corpus's reference domains).
pub fn single_tables_from_domains(
    corpus: &Corpus,
    candidates: &[BinaryTable],
    space: &ValueSpace,
    tables: &[NormBinary],
    domain_pred: impl Fn(&str) -> bool,
) -> Vec<RelationResult> {
    tables
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            let cand = &candidates[t.idx as usize];
            domain_pred(&corpus.domain_names[cand.domain.0 as usize])
        })
        .map(|(ti, _)| union_group(space, tables, &[ti as u32]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth::values::build_value_space;
    use mapsynth_corpus::{BinaryId, TableId};
    use mapsynth_text::SynonymDict;

    fn setup() -> (Corpus, Vec<BinaryTable>) {
        let mut corpus = Corpus::new();
        let wiki = corpus.domain("wiki.example.org");
        let blog = corpus.domain("blog.example.com");
        let mk = |corpus: &mut Corpus, i: u32, dom, rows: Vec<(&str, &str)>| {
            let syms: Vec<_> = rows
                .iter()
                .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                .collect();
            BinaryTable::new(BinaryId(i), TableId(i), dom, 0, 1, syms)
        };
        let t0 = mk(&mut corpus, 0, wiki, vec![("a", "1"), ("b", "2")]);
        let t1 = mk(&mut corpus, 1, blog, vec![("c", "3"), ("d", "4")]);
        (corpus, vec![t0, t1])
    }

    #[test]
    fn webtable_offers_everything() {
        let (corpus, cands) = setup();
        let (space, tables) = build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &mapsynth_mapreduce::MapReduce::new(2),
        );
        let out = single_tables(&space, &tables);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn wikitable_filters_by_domain() {
        let (corpus, cands) = setup();
        let (space, tables) = build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &mapsynth_mapreduce::MapReduce::new(2),
        );
        let out = single_tables_from_domains(&corpus, &cands, &space, &tables, |d| {
            d.starts_with("wiki.")
        });
        assert_eq!(out.len(), 1);
        assert!(out[0].pairs.contains(&("a".to_string(), "1".to_string())));
    }
}
