//! Knowledge-base baselines (`Freebase`, `YAGO`, §5.1).
//!
//! The paper extracts relationships from Freebase/YAGO RDF dumps by
//! grouping triples on predicates. We simulate the dumps from the
//! ground-truth registry with the coverage properties the paper
//! reports:
//!
//! * canonical names only — KBs "typically do not have synonyms like
//!   the ones in Table 6";
//! * coverage gaps — "YAGO has none of the example mappings listed in
//!   Table 1 ... Freebase misses two (stocks and airports)";
//! * good tail coverage for Freebase — "for domains like chemicals
//!   ... Freebase has many structured data sets curated by human from
//!   specialized data sources" (Appendix K), modelled by including
//!   low-popularity relations other methods can barely see on the web;
//! * no enterprise coverage at all.
//!
//! Both subject→object and object→subject orientations are emitted,
//! like the paper's extraction.

use crate::RelationResult;
use mapsynth_gen::{Registry, RelationKind};
use mapsynth_text::normalize;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which knowledge base to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KbStyle {
    /// Freebase: broad, curated from specialized sources; misses
    /// stocks and airports; strong on scientific/tail relations.
    Freebase,
    /// YAGO: narrower extraction from Wikipedia infoboxes; misses all
    /// of the paper's Table 1 mapping types (codes, tickers,
    /// abbreviations, airports).
    Yago,
}

/// Per-relation inclusion rules.
fn included(style: KbStyle, name: &str, popularity: f64, kind: RelationKind) -> bool {
    if kind != RelationKind::Static {
        return false;
    }
    if name.starts_with("ent-") {
        return false; // no KB covers enterprise-internal data
    }
    match style {
        KbStyle::Freebase => {
            // Paper: Freebase misses stocks and airports.
            if name.starts_with("company->")
                || name.starts_with("airport->")
                || name.starts_with("iata->")
            {
                return false;
            }
            // Web-native procedural relations: Freebase only has the
            // tail ones that came from specialized curated sources.
            if name.starts_with("proc-") {
                return popularity < 1.2;
            }
            true
        }
        KbStyle::Yago => {
            // Paper: none of Table 1's mappings (codes, tickers, state
            // abbreviations, airports), and no web-native relations.
            if name.starts_with("proc-")
                || name.starts_with("company->")
                || name.starts_with("airport->")
                || name.starts_with("iata->")
            {
                return false;
            }
            !matches!(
                name,
                "country->iso3"
                    | "country->iso2"
                    | "country->ioc"
                    | "country->fifa"
                    | "country->numeric"
                    | "country->fips"
                    | "iso3->iso2"
                    | "state->abbr"
                    | "state->fips"
            )
        }
    }
}

/// Entity coverage fraction (KBs are incomplete even where they cover
/// a relation).
fn entity_coverage(style: KbStyle) -> f64 {
    match style {
        KbStyle::Freebase => 0.92,
        KbStyle::Yago => 0.85,
    }
}

/// Build the simulated KB relationship dump.
pub fn kb_relations(registry: &Registry, style: KbStyle, seed: u64) -> Vec<RelationResult> {
    let mut rng = StdRng::seed_from_u64(seed);
    let coverage = entity_coverage(style);
    let mut out = Vec::new();
    for rel in &registry.relations {
        if !included(style, &rel.name, rel.popularity, rel.kind) {
            continue;
        }
        let mut forward = Vec::new();
        let mut backward = Vec::new();
        for e in &rel.entries {
            if !rng.gen_bool(coverage) {
                continue;
            }
            // Canonical names only: no synonym rows.
            let l = normalize(&e.left[0]);
            let r = normalize(&e.right[0]);
            if l.is_empty() || r.is_empty() {
                continue;
            }
            forward.push((l.clone(), r.clone()));
            backward.push((r, l));
        }
        if forward.len() >= 2 {
            out.push(RelationResult::new(forward));
            out.push(RelationResult::new(backward));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth_gen::procedural::ProceduralConfig;
    use mapsynth_gen::{generate_web, WebConfig};

    fn registry() -> Registry {
        generate_web(&WebConfig {
            tables: 10,
            procedural: ProceduralConfig {
                families: 10,
                ..Default::default()
            },
            ..Default::default()
        })
        .registry
    }

    #[test]
    fn yago_misses_table1_mappings() {
        let reg = registry();
        let yago = kb_relations(&reg, KbStyle::Yago, 1);
        let iso3_gt = reg.get("country->iso3").unwrap().ground_truth_pairs();
        // No YAGO relation should look like country→iso3.
        for r in &yago {
            let hits = r
                .pairs
                .iter()
                .filter(|(l, rr)| iso3_gt.contains(&(l.clone(), rr.clone())))
                .count();
            assert!(
                (hits as f64) < 0.5 * r.len() as f64,
                "YAGO should not contain ISO3 codes"
            );
        }
    }

    #[test]
    fn freebase_misses_stocks_but_covers_capitals() {
        let reg = registry();
        let fb = kb_relations(&reg, KbStyle::Freebase, 1);
        let ticker_gt = reg.get("company->ticker").unwrap().ground_truth_pairs();
        let capital_gt = reg.get("country->capital").unwrap().ground_truth_pairs();
        let best = |gt: &std::collections::HashSet<(String, String)>| {
            fb.iter()
                .map(|r| {
                    r.pairs
                        .iter()
                        .filter(|(l, rr)| gt.contains(&(l.clone(), rr.clone())))
                        .count()
                })
                .max()
                .unwrap_or(0)
        };
        assert_eq!(best(&ticker_gt), 0, "Freebase misses stocks");
        assert!(best(&capital_gt) > 50, "Freebase covers capitals");
    }

    #[test]
    fn canonical_only_no_synonyms() {
        let reg = registry();
        let fb = kb_relations(&reg, KbStyle::Freebase, 1);
        // "korea south" is a synonym form; canonical is "south korea".
        for r in &fb {
            assert!(
                !r.pairs.iter().any(|(l, _)| l == "korea south"),
                "KB must not carry synonym forms"
            );
        }
    }

    #[test]
    fn both_orientations_emitted() {
        let reg = registry();
        let fb = kb_relations(&reg, KbStyle::Freebase, 1);
        let fwd = fb
            .iter()
            .any(|r| r.pairs.iter().any(|(l, rr)| l == "hydrogen" && rr == "h"));
        let bwd = fb
            .iter()
            .any(|r| r.pairs.iter().any(|(l, rr)| l == "h" && rr == "hydrogen"));
        assert!(fwd && bwd);
    }
}
