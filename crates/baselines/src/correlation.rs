//! Correlation clustering baseline (`Correlation`, paper §5.1).
//!
//! Mimics pairwise schema matchers with the same signals as Synthesis
//! but aggregates with correlation clustering, using the parallel-pivot
//! algorithm of Chierichetti, Dalvi & Kumar (KDD 2014 — paper
//! reference \[12\]): random ranks; each round, active vertices that are
//! rank-minima among their active neighbours become pivots; active
//! neighbours join their minimum-rank pivot.
//!
//! The paper's critique, reproduced here: (1) the objective counts all
//! positive/negative edges, dominated by the quadratic mass of
//! negatives; (2) pivots only look one hop out, so chains of small
//! same-relation tables are split across clusters, hurting recall; and
//! (3) convergence is slow — the paper timed it out at 20 hours, which
//! the `max_rounds` cap models (leftover vertices finalize as
//! singletons).

use crate::{union_group, RelationResult};
use mapsynth::values::{NormBinary, ValueSpace};
use mapsynth_mapreduce::MapReduce;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Correlation clustering configuration.
#[derive(Clone, Copy, Debug)]
pub struct CorrelationConfig {
    /// Positive-edge decision threshold on `w⁺ + w⁻`.
    pub threshold: f64,
    /// Round cap (timeout surrogate; leftovers become singletons).
    pub max_rounds: usize,
    /// RNG seed for pivot ranks.
    pub seed: u64,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        Self {
            threshold: 0.5,
            max_rounds: 50,
            seed: 99,
        }
    }
}

/// Run parallel-pivot correlation clustering (blocks and scores
/// internally).
pub fn correlation_clustering(
    space: &ValueSpace,
    tables: &[NormBinary],
    cfg: &CorrelationConfig,
    mr: &MapReduce,
) -> Vec<RelationResult> {
    let scored = crate::score_candidate_pairs(space, tables, mr);
    correlation_from_scores(space, tables, &scored, cfg)
}

/// Correlation clustering over precomputed pair scores.
pub fn correlation_from_scores(
    space: &ValueSpace,
    tables: &[NormBinary],
    scored: &crate::ScoredPairs,
    cfg: &CorrelationConfig,
) -> Vec<RelationResult> {
    let n = tables.len();
    // Positive edges by combined-score decision.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b, w) in scored {
        if w.pos + w.neg >= cfg.threshold {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
    }

    // Random permutation rank.
    let mut rank: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    rank.shuffle(&mut rng);

    let mut cluster: Vec<Option<u32>> = vec![None; n]; // cluster = pivot id
    let mut rounds = 0;
    while rounds < cfg.max_rounds {
        rounds += 1;
        // Pivots: active vertices that are rank-minima among active
        // neighbours.
        let mut pivots: Vec<u32> = Vec::new();
        for v in 0..n {
            if cluster[v].is_some() {
                continue;
            }
            let is_min = adj[v]
                .iter()
                .filter(|&&u| cluster[u as usize].is_none())
                .all(|&u| rank[v] < rank[u as usize]);
            if is_min {
                pivots.push(v as u32);
            }
        }
        if pivots.is_empty() {
            break;
        }
        for &p in &pivots {
            cluster[p as usize] = Some(p);
        }
        // Active neighbours join their minimum-rank adjacent pivot.
        let mut joins: Vec<(usize, u32)> = Vec::new();
        for v in 0..n {
            if cluster[v].is_some() {
                continue;
            }
            // An active vertex has no pivot neighbours from earlier
            // rounds (it would have joined then), so checking "is a
            // pivot of its own cluster" suffices.
            let best = adj[v]
                .iter()
                .filter(|&&u| cluster[u as usize] == Some(u))
                .min_by_key(|&&u| rank[u as usize]);
            if let Some(&p) = best {
                joins.push((v, p));
            }
        }
        for (v, p) in joins {
            cluster[v] = Some(p);
        }
        if cluster.iter().all(Option::is_some) {
            break;
        }
    }
    // Timeout leftovers → singletons.
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        if cluster[v].is_none() {
            cluster[v] = Some(v as u32);
        }
    }

    // Group by pivot.
    let mut by_pivot: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for (v, p) in cluster.iter().enumerate() {
        by_pivot.entry(p.unwrap()).or_default().push(v as u32);
    }
    let mut keys: Vec<u32> = by_pivot.keys().copied().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| union_group(space, tables, &by_pivot[&k]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_text::SynonymDict;

    fn setup(tables: Vec<Vec<(&str, &str)>>) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
            })
            .collect();
        build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &mapsynth_mapreduce::MapReduce::new(2),
        )
    }

    #[test]
    fn identical_tables_cluster() {
        let rows = vec![("a", "1"), ("b", "2"), ("c", "3")];
        let (space, t) = setup((0..5).map(|_| rows.clone()).collect());
        let out = correlation_clustering(
            &space,
            &t,
            &CorrelationConfig::default(),
            &MapReduce::new(2),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn chain_splits_at_pivot_horizon() {
        // A chain t0–t1–t2–t3 where only adjacent tables share enough
        // values: one-hop pivots cannot gather the whole chain in one
        // round, often splitting it — the recall failure the paper
        // describes. We only assert it terminates and covers all pairs.
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2"), ("c", "3")],
            vec![("b", "2"), ("c", "3"), ("d", "4")],
            vec![("c", "3"), ("d", "4"), ("e", "5")],
            vec![("d", "4"), ("e", "5"), ("f", "6")],
        ]);
        let out = correlation_clustering(
            &space,
            &t,
            &CorrelationConfig {
                threshold: 0.6,
                ..Default::default()
            },
            &MapReduce::new(2),
        );
        let total: usize = out.iter().map(RelationResult::len).sum();
        assert!(total >= 6);
        assert!(!out.is_empty());
    }

    #[test]
    fn round_cap_finalizes_singletons() {
        let rows = vec![("a", "1"), ("b", "2"), ("c", "3")];
        let (space, t) = setup((0..4).map(|_| rows.clone()).collect());
        let out = correlation_clustering(
            &space,
            &t,
            &CorrelationConfig {
                max_rounds: 0,
                ..Default::default()
            },
            &MapReduce::new(1),
        );
        assert_eq!(out.len(), 4, "no rounds → all singletons");
    }

    #[test]
    fn deterministic_given_seed() {
        let rows = vec![("a", "1"), ("b", "2"), ("c", "3")];
        let (space, t) = setup((0..6).map(|_| rows.clone()).collect());
        let run = || {
            correlation_clustering(
                &space,
                &t,
                &CorrelationConfig::default(),
                &MapReduce::new(3),
            )
            .len()
        };
        assert_eq!(run(), run());
    }
}
