//! Schema-matching + connected-components baselines (`SchemaCC` and
//! `SchemaPosCC`, paper §5.1).
//!
//! These mimic pairwise schema matchers using the *same* positive and
//! negative signals as Synthesis, but aggregate the pairwise decisions
//! by transitivity: if A matches B and B matches C, then A, B, C land
//! in one group — connected components over thresholded match edges.
//! The paper's finding: transitive aggregation over- and under-groups
//! because a single borderline edge fuses unrelated clusters.

use crate::{union_group, RelationResult};
use mapsynth::values::{NormBinary, ValueSpace};
use mapsynth_mapreduce::{connected_components_union_find, MapReduce};

/// SchemaCC configuration.
#[derive(Clone, Copy, Debug)]
pub struct SchemaCcConfig {
    /// Match threshold on the combined score `w⁺ + w⁻` (the paper
    /// sweeps `[0, 1]` and reports the best).
    pub threshold: f64,
    /// Whether negative signals are used (`false` = `SchemaPosCC`).
    pub use_negative: bool,
}

impl Default for SchemaCcConfig {
    fn default() -> Self {
        Self {
            threshold: 0.8,
            use_negative: true,
        }
    }
}

/// Run the SchemaCC baseline (blocks and scores internally).
pub fn schema_cc(
    space: &ValueSpace,
    tables: &[NormBinary],
    cfg: &SchemaCcConfig,
    mr: &MapReduce,
) -> Vec<RelationResult> {
    let scored = crate::score_candidate_pairs(space, tables, mr);
    schema_cc_from_scores(space, tables, &scored, cfg)
}

/// SchemaCC over precomputed pair scores (used by threshold sweeps).
pub fn schema_cc_from_scores(
    space: &ValueSpace,
    tables: &[NormBinary],
    scored: &crate::ScoredPairs,
    cfg: &SchemaCcConfig,
) -> Vec<RelationResult> {
    // Pairwise "match" decision: combined score clears the threshold.
    let edges: Vec<(u32, u32)> = scored
        .iter()
        .filter(|&&(_, _, w)| {
            let combined = if cfg.use_negative {
                w.pos + w.neg
            } else {
                w.pos
            };
            combined >= cfg.threshold
        })
        .map(|&(a, b, _)| (a, b))
        .collect();
    let components = connected_components_union_find(tables.len(), &edges);
    components
        .into_iter()
        .map(|comp| {
            let group: Vec<u32> = comp.into_iter().map(|v| v as u32).collect();
            union_group(space, tables, &group)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth::values::build_value_space;
    use mapsynth_corpus::{BinaryId, BinaryTable, Corpus, TableId};
    use mapsynth_text::SynonymDict;

    fn setup(tables: Vec<Vec<(&str, &str)>>) -> (std::sync::Arc<ValueSpace>, Vec<NormBinary>) {
        let mut corpus = Corpus::new();
        let d = corpus.domain("x");
        let cands: Vec<BinaryTable> = tables
            .into_iter()
            .enumerate()
            .map(|(i, rows)| {
                let syms = rows
                    .iter()
                    .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                    .collect();
                BinaryTable::new(BinaryId(i as u32), TableId(i as u32), d, 0, 1, syms)
            })
            .collect();
        build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &mapsynth_mapreduce::MapReduce::new(2),
        )
    }

    /// ISO and IOC tables with a bridge table that overlaps both: CC
    /// transitivity fuses the standards; negative signals only help if
    /// the *pairwise* combined score dips below threshold.
    #[test]
    fn transitive_fusion_failure_mode() {
        let iso = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "DZA"),
            ("Germany", "DEU"),
        ];
        let ioc = vec![
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "ALG"),
            ("Germany", "GER"),
        ];
        let (space, t) = setup(vec![iso.clone(), iso, ioc.clone(), ioc]);
        // Pos between standards: 2/4 = 0.5; neg: −0.5 → combined 0.
        // With threshold 0.8 the standards stay apart.
        let out = schema_cc(&space, &t, &SchemaCcConfig::default(), &MapReduce::new(2));
        assert_eq!(out.len(), 2);
        // Without negatives and a lenient threshold, they fuse.
        let out = schema_cc(
            &space,
            &t,
            &SchemaCcConfig {
                threshold: 0.5,
                use_negative: false,
            },
            &MapReduce::new(2),
        );
        assert_eq!(out.len(), 1, "SchemaPosCC fuses the standards");
        // The fused result carries FD conflicts (both DZA and ALG for
        // Algeria).
        let algeria: Vec<&str> = out[0]
            .pairs
            .iter()
            .filter(|(l, _)| l == "algeria")
            .map(|(_, r)| r.as_str())
            .collect();
        assert_eq!(algeria.len(), 2);
    }

    #[test]
    fn singletons_survive() {
        let (space, t) = setup(vec![
            vec![("a", "1"), ("b", "2")],
            vec![("x", "8"), ("y", "9")],
        ]);
        let out = schema_cc(&space, &t, &SchemaCcConfig::default(), &MapReduce::new(1));
        assert_eq!(out.len(), 2);
    }
}
