//! WiseIntegrator-style collective interface matching (He, Meng, Yu &
//! Wu — paper references [22, 23]; method `WiseIntegrator` in §5.1).
//!
//! WISE-Integrator clusters attributes of web search interfaces using
//! linguistic similarity of attribute names plus value-type
//! compatibility, with greedy clustering. Transplanted to table
//! synthesis: candidate tables cluster when their (left, right) header
//! token sets are similar and their value types agree. Value overlap is
//! not consulted — the method's defining limitation on heterogeneous
//! corpora where headers are generic.

use crate::{union_group, RelationResult};
use mapsynth::values::{NormBinary, ValueSpace};
use mapsynth_corpus::{BinaryTable, Corpus};
use mapsynth_text::normalize;
use std::collections::HashSet;

/// Value type classes used for compatibility (WISE-Integrator's "value
/// type" signal).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ValueType {
    /// Mostly alphabetic tokens.
    Alpha,
    /// Mostly digits.
    Numeric,
    /// Mixed letters and digits.
    AlphaNumeric,
}

/// Clustering threshold configuration.
#[derive(Clone, Copy, Debug)]
pub struct WiseConfig {
    /// Minimum mean header-token Jaccard (left and right averaged).
    pub min_header_sim: f64,
}

impl Default for WiseConfig {
    fn default() -> Self {
        Self {
            min_header_sim: 0.5,
        }
    }
}

struct Features {
    left_tokens: HashSet<String>,
    right_tokens: HashSet<String>,
    left_type: ValueType,
    right_type: ValueType,
    /// Average value length bucket (short code vs long name) — the
    /// value-shape signal WISE-Integrator derives from value patterns.
    left_len: u8,
    right_len: u8,
}

/// Classify a column's dominant value type.
pub fn value_type<'a>(values: impl Iterator<Item = &'a str>) -> ValueType {
    let mut alpha = 0usize;
    let mut numeric = 0usize;
    let mut mixed = 0usize;
    for v in values {
        let has_alpha = v.chars().any(|c| c.is_alphabetic());
        let has_digit = v.chars().any(|c| c.is_ascii_digit());
        match (has_alpha, has_digit) {
            (true, false) => alpha += 1,
            (false, true) => numeric += 1,
            _ => mixed += 1,
        }
    }
    if alpha >= numeric && alpha >= mixed {
        ValueType::Alpha
    } else if numeric >= mixed {
        ValueType::Numeric
    } else {
        ValueType::AlphaNumeric
    }
}

fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Run the WiseIntegrator-style baseline.
pub fn wise_integrator(
    corpus: &Corpus,
    candidates: &[BinaryTable],
    space: &ValueSpace,
    tables: &[NormBinary],
    cfg: &WiseConfig,
) -> Vec<RelationResult> {
    let features: Vec<Features> = tables
        .iter()
        .map(|t| {
            let cand = &candidates[t.idx as usize];
            let tokens = |h: Option<mapsynth_corpus::Sym>| -> HashSet<String> {
                h.map(|h| {
                    normalize(corpus.str_of(h))
                        .split_whitespace()
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default()
            };
            let len_bucket = |mean: f64| -> u8 {
                if mean <= 4.0 {
                    0 // short codes
                } else if mean <= 12.0 {
                    1 // words
                } else {
                    2 // phrases
                }
            };
            let mean_len = |iter: &mut dyn Iterator<Item = &str>| -> f64 {
                let mut n = 0usize;
                let mut total = 0usize;
                for s in iter {
                    n += 1;
                    total += s.chars().count();
                }
                total as f64 / n.max(1) as f64
            };
            Features {
                left_tokens: tokens(cand.left_header),
                right_tokens: tokens(cand.right_header),
                left_type: value_type(t.pairs.iter().map(|&(l, _)| space.string(l))),
                right_type: value_type(t.pairs.iter().map(|&(_, r)| space.string(r))),
                left_len: len_bucket(mean_len(&mut t.pairs.iter().map(|&(l, _)| space.string(l)))),
                right_len: len_bucket(mean_len(&mut t.pairs.iter().map(|&(_, r)| space.string(r)))),
            }
        })
        .collect();

    // Greedy clustering against the first member's features
    // (WISE-Integrator grows clusters around representative attributes).
    let mut clusters: Vec<(usize, Vec<u32>)> = Vec::new(); // (rep feature idx, members)
    for (ti, f) in features.iter().enumerate() {
        let mut assigned = false;
        for (rep, members) in clusters.iter_mut() {
            let r = &features[*rep];
            if r.left_type != f.left_type
                || r.right_type != f.right_type
                || r.left_len != f.left_len
                || r.right_len != f.right_len
            {
                continue;
            }
            let sim = 0.5
                * (jaccard(&r.left_tokens, &f.left_tokens)
                    + jaccard(&r.right_tokens, &f.right_tokens));
            if sim >= cfg.min_header_sim {
                members.push(ti as u32);
                assigned = true;
                break;
            }
        }
        if !assigned {
            clusters.push((ti, vec![ti as u32]));
        }
    }
    clusters
        .into_iter()
        .map(|(_, members)| union_group(space, tables, &members))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth::values::build_value_space;
    use mapsynth_corpus::{BinaryId, TableId};
    use mapsynth_text::SynonymDict;

    fn mk(
        corpus: &mut Corpus,
        i: u32,
        headers: (&str, &str),
        rows: Vec<(&str, &str)>,
    ) -> BinaryTable {
        let d = corpus.domain("x");
        let lh = Some(corpus.interner.intern(headers.0));
        let rh = Some(corpus.interner.intern(headers.1));
        let syms: Vec<_> = rows
            .iter()
            .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
            .collect();
        BinaryTable::new(BinaryId(i), TableId(i), d, 0, 1, syms).with_headers(lh, rh)
    }

    #[test]
    fn groups_by_header_similarity_regardless_of_values() {
        let mut corpus = Corpus::new();
        let cands = vec![
            mk(
                &mut corpus,
                0,
                ("country name", "code"),
                vec![("United States", "USA"), ("Canada", "CAN")],
            ),
            mk(
                &mut corpus,
                1,
                ("country", "code"),
                vec![("Japan", "JPN"), ("Germany", "DEU")],
            ),
            // Different relation, similar generic headers → over-grouped.
            mk(
                &mut corpus,
                2,
                ("country", "code"),
                vec![("France", "33"), ("Spain", "34")],
            ),
            // Numeric right type differs? "33" is numeric vs "USA" alpha —
            // type check saves this one only if types differ.
            mk(
                &mut corpus,
                3,
                ("element", "symbol"),
                vec![("Hydrogen", "H"), ("Helium", "He")],
            ),
        ];
        let (space, tables) = build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &mapsynth_mapreduce::MapReduce::new(2),
        );
        let out = wise_integrator(&corpus, &cands, &space, &tables, &WiseConfig::default());
        // Tables 0,1 group (country/code headers, alpha/alpha types);
        // table 2 has numeric right → separate; table 3 separate headers.
        assert_eq!(out.len(), 3);
        let sizes: Vec<usize> = out.iter().map(RelationResult::len).collect();
        assert!(sizes.contains(&4), "sizes: {sizes:?}");
    }

    #[test]
    fn value_type_classification() {
        assert_eq!(value_type(["abc", "def"].into_iter()), ValueType::Alpha);
        assert_eq!(value_type(["123", "456"].into_iter()), ValueType::Numeric);
        assert_eq!(
            value_type(["a1", "b2"].into_iter()),
            ValueType::AlphaNumeric
        );
    }
}
