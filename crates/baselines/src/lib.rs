//! # mapsynth-baselines
//!
//! Every comparison method from the paper's evaluation (§5.1 "Methods
//! compared"), implemented over the same candidate tables and value
//! space as the core `Synthesis` method:
//!
//! | Method | Module | Paper description |
//! |---|---|---|
//! | `UnionDomain` | [`union`] | Ling & Halevy stitching: same domain + same column names |
//! | `UnionWeb` | [`union`] | same column names across the whole web |
//! | `SchemaCC` | [`schema_cc`] | pairwise matcher, threshold, connected components |
//! | `SchemaPosCC` | [`schema_cc`] | SchemaCC without FD-induced negative signals |
//! | `Correlation` | [`correlation`] | parallel-pivot correlation clustering (Chierichetti et al.) |
//! | `WiseIntegrator` | [`wise`] | linguistic header/type clustering of web interfaces |
//! | `WikiTable` / `WebTable` / `EntTable` | [`single_table`] | best single raw table |
//! | `Freebase` / `YAGO` | [`kb`] | knowledge-base relationship dumps |
//!
//! All methods produce [`RelationResult`]s — candidate relations as
//! normalized pair sets — which the evaluation harness scores by
//! picking the best relation per benchmark case (the paper's
//! method-favourable scoring).

pub mod correlation;
pub mod kb;
pub mod schema_cc;
pub mod single_table;
pub mod union;
pub mod wise;

use mapsynth::blocking::candidate_pairs;
use mapsynth::compat::{PairWeights, ScoringContext};
use mapsynth::values::{NormBinary, ValueSpace};
use mapsynth::SynthesisConfig;
use mapsynth_mapreduce::MapReduce;

/// Scored candidate table pairs, shared by SchemaCC / SchemaPosCC /
/// Correlation so threshold sweeps don't re-score.
pub type ScoredPairs = Vec<(u32, u32, PairWeights)>;

/// Block and score all candidate pairs with the Synthesis signals.
/// One shared [`ScoringContext`] (sorted table views + the global
/// approximate-match memo) serves every pair, so edit distance runs
/// once per value pair — not once per table pair.
pub fn score_candidate_pairs(
    space: &ValueSpace,
    tables: &[NormBinary],
    mr: &MapReduce,
) -> ScoredPairs {
    let cfg = SynthesisConfig::default();
    let (pairs, _) = candidate_pairs(space, tables, &cfg, mr);
    let ctx = ScoringContext::build(space, tables, &cfg, mr);
    mr.par_map(&pairs, |&(a, b)| (a, b, ctx.score_pair(space, a, b)))
}

/// A candidate relation produced by a baseline: normalized pairs.
#[derive(Clone, Debug)]
pub struct RelationResult {
    /// Normalized `(left, right)` pairs, sorted, deduplicated.
    pub pairs: Vec<(String, String)>,
}

impl RelationResult {
    /// Build from unsorted pairs.
    pub fn new(mut pairs: Vec<(String, String)>) -> Self {
        pairs.sort();
        pairs.dedup();
        Self { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Union the pairs of a group of normalized candidates into one result.
pub(crate) fn union_group(
    space: &ValueSpace,
    tables: &[NormBinary],
    group: &[u32],
) -> RelationResult {
    let mut pairs: Vec<(String, String)> = group
        .iter()
        .flat_map(|&ti| tables[ti as usize].pairs.iter())
        .map(|&(l, r)| (space.string(l).to_string(), space.string(r).to_string()))
        .collect();
    pairs.sort();
    pairs.dedup();
    RelationResult { pairs }
}
