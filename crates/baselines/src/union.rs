//! Union-table stitching (Ling & Halevy et al., IJCAI 2013 — paper
//! reference \[30\]; methods `UnionDomain` and `UnionWeb` in §5.1).
//!
//! Tables are unioned when their column names match — within one web
//! domain (`UnionDomain`) or across the whole corpus (`UnionWeb`). The
//! paper's criticism: web column names are undescriptive ("name",
//! "code"), so name-based grouping over-groups unrelated relations and
//! under-groups tables whose names differ cosmetically.

use crate::{union_group, RelationResult};
use mapsynth::values::{NormBinary, ValueSpace};
use mapsynth_corpus::{BinaryTable, Corpus};
use mapsynth_text::normalize;
use std::collections::HashMap;

/// Grouping scope for union stitching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnionScope {
    /// Group by (domain, column names) — Ling & Halevy as published.
    Domain,
    /// Group by column names only — the paper's `UnionWeb` variant.
    Web,
}

/// Run union stitching over the candidate tables.
///
/// `tables` are the normalized candidates (aligned with `candidates`
/// via `NormBinary::idx`); headers come from the raw candidates.
/// Candidates without headers form singleton groups (nothing to match
/// on).
pub fn union_tables(
    corpus: &Corpus,
    candidates: &[BinaryTable],
    space: &ValueSpace,
    tables: &[NormBinary],
    scope: UnionScope,
) -> Vec<RelationResult> {
    let mut groups: HashMap<(Option<u32>, String, String), Vec<u32>> = HashMap::new();
    let mut singletons: Vec<u32> = Vec::new();
    for (ti, t) in tables.iter().enumerate() {
        let cand = &candidates[t.idx as usize];
        let headers = match (cand.left_header, cand.right_header) {
            (Some(l), Some(r)) => Some((normalize(corpus.str_of(l)), normalize(corpus.str_of(r)))),
            _ => None,
        };
        match headers {
            Some((lh, rh)) if !lh.is_empty() && !rh.is_empty() => {
                let dom = match scope {
                    UnionScope::Domain => Some(cand.domain.0),
                    UnionScope::Web => None,
                };
                groups.entry((dom, lh, rh)).or_default().push(ti as u32);
            }
            _ => singletons.push(ti as u32),
        }
    }
    let mut keys: Vec<_> = groups.keys().cloned().collect();
    keys.sort();
    let mut out: Vec<RelationResult> = keys
        .into_iter()
        .map(|k| union_group(space, tables, &groups[&k]))
        .collect();
    out.extend(
        singletons
            .into_iter()
            .map(|ti| union_group(space, tables, &[ti])),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth::values::build_value_space;
    use mapsynth_corpus::{BinaryId, TableId};
    use mapsynth_text::SynonymDict;

    /// Two domains; "name/code" header pairs carrying two *different*
    /// relations (countries and elements) — the over-grouping failure.
    fn setup() -> (Corpus, Vec<BinaryTable>) {
        let mut corpus = Corpus::new();
        let d0 = corpus.domain("a.com");
        let d1 = corpus.domain("b.com");
        let name = Some(corpus.interner.intern("name"));
        let code = Some(corpus.interner.intern("code"));
        let mk = |corpus: &mut Corpus, i: u32, dom, rows: Vec<(&str, &str)>| {
            let syms: Vec<_> = rows
                .iter()
                .map(|(l, r)| (corpus.interner.intern(l), corpus.interner.intern(r)))
                .collect();
            BinaryTable::new(BinaryId(i), TableId(i), dom, 0, 1, syms)
        };
        let t0 = mk(
            &mut corpus,
            0,
            d0,
            vec![("United States", "USA"), ("Canada", "CAN")],
        )
        .with_headers(name, code);
        let t1 = mk(
            &mut corpus,
            1,
            d0,
            vec![("Japan", "JPN"), ("Germany", "DEU")],
        )
        .with_headers(name, code);
        let t2 = mk(
            &mut corpus,
            2,
            d1,
            vec![("Hydrogen", "H"), ("Helium", "He")],
        )
        .with_headers(name, code);
        (corpus, vec![t0, t1, t2])
    }

    #[test]
    fn union_domain_groups_within_domain_only() {
        let (corpus, cands) = setup();
        let (space, tables) = build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &mapsynth_mapreduce::MapReduce::new(2),
        );
        let out = union_tables(&corpus, &cands, &space, &tables, UnionScope::Domain);
        // d0's two country tables union; d1's element table separate.
        assert_eq!(out.len(), 2);
        let sizes: Vec<usize> = out.iter().map(RelationResult::len).collect();
        assert!(sizes.contains(&4) && sizes.contains(&2));
    }

    #[test]
    fn union_web_overgroups_generic_names() {
        let (corpus, cands) = setup();
        let (space, tables) = build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &mapsynth_mapreduce::MapReduce::new(2),
        );
        let out = union_tables(&corpus, &cands, &space, &tables, UnionScope::Web);
        // All three tables share "name/code" headers → one mixed blob
        // (countries + elements): the over-grouping the paper reports.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 6);
    }

    #[test]
    fn headerless_candidates_stay_singleton() {
        let (mut corpus, mut cands) = setup();
        let d = corpus.domain("c.com");
        let syms = vec![
            (corpus.interner.intern("x"), corpus.interner.intern("1")),
            (corpus.interner.intern("y"), corpus.interner.intern("2")),
        ];
        cands.push(BinaryTable::new(BinaryId(3), TableId(3), d, 0, 1, syms));
        let (space, tables) = build_value_space(
            &corpus.interner,
            &cands,
            &SynonymDict::new(),
            &mapsynth_mapreduce::MapReduce::new(2),
        );
        let out = union_tables(&corpus, &cands, &space, &tables, UnionScope::Web);
        assert_eq!(out.len(), 2);
    }
}
