//! Web-table corpus generator.
//!
//! Produces a heterogeneous corpus with the statistical shape of the
//! paper's web crawl: short tables for human consumption, each covering
//! a fragment of one relation with one synonym style; undescriptive
//! column headers; distractor columns (ranks, numbers, incoherent
//! free text); spurious-FD tables; formatting tables; temporal
//! relations; and dirty cells per [`NoiseConfig`].
//!
//! Generation is a deterministic state machine over a seeded RNG, so it
//! comes in two shapes that produce bit-identical tables:
//!
//! * [`generate_web`] materializes the whole corpus at once (tests,
//!   small runs, anything that needs the ground-truth registry), and
//! * [`WebTableStream`] yields one table at a time through the
//!   [`TableSource`] trait, so large scale tiers can feed streaming
//!   extraction without ever holding every raw table in memory.
//!
//! `generate_web` is implemented by draining a `WebTableStream`, so the
//! two cannot drift apart.

use crate::data::{airports, cities, misc};
use crate::noise::{corrupt_cell, incoherent_cell, NoiseConfig};
use crate::procedural::{procedural_relations, ProceduralConfig};
use crate::registry::{Registry, Relation};
use mapsynth_corpus::{Column, Corpus, DomainId, Interner, Table, TableId, TableSource};
use mapsynth_text::normalize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Web corpus generation parameters.
#[derive(Clone, Debug)]
pub struct WebConfig {
    /// Number of relation-backed tables to generate (spurious and
    /// formatting tables are added on top as fractions of this count).
    pub tables: usize,
    /// RNG seed; generation is deterministic given the config.
    pub seed: u64,
    /// Number of distinct provenance web domains.
    pub domains: usize,
    /// Cell noise model.
    pub noise: NoiseConfig,
    /// Procedural relation families.
    pub procedural: ProceduralConfig,
    /// Row-count range for generated tables.
    pub min_rows: usize,
    /// Maximum rows per table.
    pub max_rows: usize,
    /// Probability of adding a numeric distractor column.
    pub numeric_col_prob: f64,
    /// Probability of adding a rank distractor column.
    pub rank_col_prob: f64,
    /// Probability of adding an incoherent free-text column (the
    /// paper's Table 7 "Location" column) that PMI filtering must cut.
    pub incoherent_col_prob: f64,
    /// Probability a table carries a second related right column
    /// (country | iso3 | capital), yielding several candidate pairs.
    pub multi_rel_prob: f64,
    /// Fraction (of `tables`) of spurious-FD tables
    /// (departure → arrival airports).
    pub spurious_frac: f64,
    /// Fraction (of `tables`) of formatting tables (month → month).
    pub formatting_frac: f64,
    /// Probability headers are descriptive rather than generic.
    pub descriptive_header_prob: f64,
    /// Probability a city→state table includes an ambiguous duplicate
    /// city (Portland, Maine) — exercising θ-approximate FD.
    pub ambiguous_city_prob: f64,
    /// Probability a table is a *comprehensive* reference list covering
    /// the entire relation (Wikipedia-style complete code tables).
    /// These act as containment hubs: fragments score w⁺ ≈ 1 against
    /// them, which is how the paper's max-of-containment metric is
    /// designed to connect partial tables.
    pub comprehensive_prob: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        Self {
            tables: 8000,
            seed: 42,
            domains: 400,
            noise: NoiseConfig::default(),
            procedural: ProceduralConfig::default(),
            min_rows: 5,
            max_rows: 40,
            numeric_col_prob: 0.3,
            rank_col_prob: 0.15,
            incoherent_col_prob: 0.12,
            multi_rel_prob: 0.2,
            spurious_frac: 0.02,
            formatting_frac: 0.01,
            descriptive_header_prob: 0.25,
            ambiguous_city_prob: 0.15,
            comprehensive_prob: 0.08,
        }
    }
}

/// A generated corpus plus the registry it was drawn from and a
/// per-table provenance label (which relation produced each table;
/// `None` for spurious/formatting tables).
pub struct WebCorpus {
    /// The table corpus.
    pub corpus: Corpus,
    /// Ground-truth registry (benchmark cases included).
    pub registry: Registry,
    /// `table_relation[table_id] = Some(relation name)` for
    /// relation-backed tables.
    pub table_relation: Vec<Option<String>>,
    /// Every normalized ground-truth-consistent `(left, right)` pair
    /// that some generated table actually asserts. The paper's
    /// benchmark ground truth is built from *observed* web tables (plus
    /// KB instances); restricting gt to this set mirrors that
    /// construction.
    pub emitted_pairs: std::collections::HashSet<(String, String)>,
}

/// Generate the web corpus.
pub fn generate_web(cfg: &WebConfig) -> WebCorpus {
    let mut stream = WebTableStream::new(cfg.clone());
    let mut tables = Vec::with_capacity(stream.table_count());
    while let Some(t) = stream.next_table() {
        tables.push(t);
    }
    let registry = Registry {
        relations: stream.relations.clone(),
    };
    WebCorpus {
        corpus: Corpus {
            interner: stream.interner,
            tables,
            domain_names: stream.domain_names,
        },
        registry,
        table_relation: stream.table_relation,
        emitted_pairs: stream.emitted_pairs,
    }
}

/// Streaming web-corpus generator: the same deterministic state machine
/// as [`generate_web`], exposed one table at a time as a
/// [`TableSource`].
///
/// The stream owns the interner and RNG; each call to
/// [`next_table`](TableSource::next_table) advances the RNG exactly as
/// the batch generator's loop body would, so table `i` of the stream is
/// bit-identical (same `Sym`s, same domain, same rows) to table `i` of
/// the materialized corpus for the same config. [`rewind`] re-seeds the
/// RNG and replays; the append-only interner resolves repeated strings
/// to their first-pass symbols, so replayed tables are identical too.
///
/// Ground-truth metadata (`table_relation`, `emitted_pairs`) is
/// recorded on the first pass only.
///
/// [`rewind`]: TableSource::rewind
pub struct WebTableStream {
    cfg: WebConfig,
    rng: StdRng,
    relations: Vec<Relation>,
    /// Popularity weights over `relations`.
    weights: Vec<f64>,
    total_w: f64,
    /// Per-relation map: canonical left form → entry index. Used for
    /// multi-relation tables.
    left_index: Vec<HashMap<String, usize>>,
    interner: Interner,
    domain_names: Vec<String>,
    wiki_domain: DomainId,
    domain_ids: Vec<DomainId>,
    months: Vec<String>,
    /// Tables yielded so far in the current pass (== next TableId).
    produced: usize,
    n_rel: usize,
    n_spurious: usize,
    n_fmt: usize,
    /// Record ground-truth metadata (first pass only).
    record_meta: bool,
    table_relation: Vec<Option<String>>,
    emitted_pairs: HashSet<(String, String)>,
}

/// Relations grouped by shared left-entity family (same prefix).
fn family_of(name: &str) -> Option<&'static str> {
    ["country->", "state->", "airport->"]
        .into_iter()
        .find(|&prefix| name.starts_with(prefix))
}

impl WebTableStream {
    /// Set up the generator state for `cfg`. No tables are produced
    /// yet; the first [`next_table`](TableSource::next_table) call
    /// yields `TableId(0)`.
    pub fn new(cfg: WebConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut relations = crate::data::build_real_relations();
        relations.extend(procedural_relations(&cfg.procedural));

        // Dedicated reference domain: comprehensive tables often live
        // on a Wikipedia-like site. The WikiTable baseline selects on
        // this. Domain ids mirror `Corpus::domain` registration order.
        let mut domain_names = vec!["wikipedia.example.org".to_string()];
        let wiki_domain = DomainId(0);
        let domain_ids: Vec<_> = (0..cfg.domains)
            .map(|i| {
                domain_names.push(format!("site-{i:04}.example.com"));
                DomainId((domain_names.len() - 1) as u32)
            })
            .collect();

        // Cumulative popularity distribution over relations.
        let weights: Vec<f64> = relations.iter().map(|r| r.popularity).collect();
        let total_w: f64 = weights.iter().sum();

        // Group map for multi-relation tables: canonical left → entry
        // idx.
        let left_index: Vec<HashMap<String, usize>> = relations
            .iter()
            .map(|r| {
                r.entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (normalize(&e.left[0]), i))
                    .collect()
            })
            .collect();

        // Formatting tables: two-column month calendars (paper Figure
        // 13's month→month).
        let misc_rels = misc::misc_relations();
        let months: Vec<String> = misc_rels[0]
            .entries
            .iter()
            .map(|e| e.left[0].clone())
            .collect();

        let n_spurious = (cfg.tables as f64 * cfg.spurious_frac) as usize;
        let n_fmt = (cfg.tables as f64 * cfg.formatting_frac) as usize;
        Self {
            n_rel: cfg.tables,
            n_spurious,
            n_fmt,
            cfg,
            rng,
            relations,
            weights,
            total_w,
            left_index,
            interner: Interner::new(),
            domain_names,
            wiki_domain,
            domain_ids,
            months,
            produced: 0,
            record_meta: true,
            table_relation: Vec::new(),
            emitted_pairs: HashSet::new(),
        }
    }

    /// The ground-truth registry the stream draws tables from.
    pub fn registry(&self) -> Registry {
        Registry {
            relations: self.relations.clone(),
        }
    }

    /// Intern a string-valued table and stamp it with the next id.
    fn intern_table(
        &mut self,
        domain: DomainId,
        columns: Vec<(Option<String>, Vec<String>)>,
    ) -> Table {
        let cols: Vec<Column> = columns
            .into_iter()
            .map(|(h, vals)| {
                let header = h.map(|h| self.interner.intern(&h));
                let values = vals.iter().map(|v| self.interner.intern(v)).collect();
                Column::new(header, values)
            })
            .collect();
        let id = TableId(self.produced as u32);
        self.produced += 1;
        Table {
            id,
            domain,
            columns: cols,
        }
    }

    /// One relation-backed table (phase 1 of the generator).
    fn next_relation_table(&mut self) -> Table {
        let cfg = self.cfg.clone();
        let rng = &mut self.rng;
        // Pick a relation by popularity.
        let mut pick = rng.gen::<f64>() * self.total_w;
        let mut rel_idx = 0;
        for (i, w) in self.weights.iter().enumerate() {
            if pick < *w {
                rel_idx = i;
                break;
            }
            pick -= w;
        }
        let rel = &self.relations[rel_idx];
        let comprehensive = rng.gen_bool(cfg.comprehensive_prob);
        let domain = if comprehensive && rng.gen_bool(0.5) {
            self.wiki_domain
        } else {
            self.domain_ids[zipf_index(rng, self.domain_ids.len())]
        };
        let rows = if comprehensive {
            rel.len()
        } else {
            rng.gen_range(cfg.min_rows..=cfg.max_rows)
                .min(rel.len().max(2))
        };

        // Choose entity subset.
        let entry_idxs = sample_entries(rng, rel.len(), rows);

        // Per-table synonym style. Comprehensive reference lists use
        // canonical names; other tables mostly do too, with a minority
        // style preference (real tables: common name dominates, formal
        // variants appear in a minority of sources).
        let style = if comprehensive || rng.gen_bool(0.6) {
            0
        } else {
            rng.gen_range(1..8usize)
        };

        let mut left_cells: Vec<String> = Vec::with_capacity(rows);
        let mut right_cells: Vec<String> = Vec::with_capacity(rows);
        for &ei in &entry_idxs {
            let e = &rel.entries[ei];
            let lform = pick_form(rng, &e.left, style);
            let rform = pick_form(rng, &e.right, style);
            let mut right = rform.to_string();
            // Wrong-value substitution (paper Figure 4).
            if cfg.noise.wrong_value > 0.0 && rng.gen_bool(cfg.noise.wrong_value) && rel.len() > 1 {
                let other = rng.gen_range(0..rel.len());
                right = rel.entries[other].right[0].clone();
            }
            let lcell = corrupt_cell(rng, &cfg.noise, lform);
            let rcell = corrupt_cell(rng, &cfg.noise, &right);
            if self.record_meta {
                self.emitted_pairs
                    .insert((normalize(&lcell), normalize(&rcell)));
            }
            left_cells.push(lcell);
            right_cells.push(rcell);
        }

        // Ambiguous city injection for city→state style relations.
        if rel.name.starts_with("city->") && rng.gen_bool(cfg.ambiguous_city_prob) {
            let amb = &cities::AMBIGUOUS[rng.gen_range(0..cities::AMBIGUOUS.len())];
            left_cells.push(amb.city.to_string());
            right_cells.push(amb.other_state.to_string());
        }

        let n_rows = left_cells.len();
        // Header choice: descriptive, the relation's usual generic, or
        // a shared generic from a small pool ("name"/"code" everywhere
        // is the paper's point about undescriptive headers, but real
        // sites also write "title", "id", "abbr", …).
        const GENERIC_LEFT: &[&str] = &["name", "title", "entity", "item"];
        const GENERIC_RIGHT: &[&str] = &["code", "id", "value", "abbr"];
        let (lh, rh) = if rng.gen_bool(cfg.descriptive_header_prob) {
            (rel.left_label.clone(), rel.right_label.clone())
        } else if rng.gen_bool(0.75) {
            (rel.generic_left.clone(), rel.generic_right.clone())
        } else {
            (
                GENERIC_LEFT[rng.gen_range(0..GENERIC_LEFT.len())].to_string(),
                GENERIC_RIGHT[rng.gen_range(0..GENERIC_RIGHT.len())].to_string(),
            )
        };

        let mut columns: Vec<(Option<String>, Vec<String>)> =
            vec![(Some(lh), left_cells), (Some(rh), right_cells)];

        // Second related right column (same left entities).
        if rng.gen_bool(cfg.multi_rel_prob) {
            if let Some(fam) = family_of(&rel.name) {
                let others: Vec<usize> = self
                    .relations
                    .iter()
                    .enumerate()
                    .filter(|(i, r)| *i != rel_idx && r.name.starts_with(fam))
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&oi) = others.choose(rng) {
                    let other = &self.relations[oi];
                    let mut extra: Vec<String> = Vec::with_capacity(n_rows);
                    let mut complete = true;
                    for &ei in &entry_idxs {
                        let canon = normalize(&rel.entries[ei].left[0]);
                        match self.left_index[oi].get(&canon) {
                            Some(&oe) => {
                                extra.push(other.entries[oe].right[0].clone());
                            }
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                    if complete && extra.len() == n_rows {
                        if self.record_meta {
                            for (&ei, val) in entry_idxs.iter().zip(&extra) {
                                self.emitted_pairs
                                    .insert((normalize(&rel.entries[ei].left[0]), normalize(val)));
                            }
                        }
                        columns.push((Some(other.generic_right.clone()), extra));
                    }
                }
            }
        }

        // Distractor columns.
        if rng.gen_bool(cfg.rank_col_prob) {
            let rank: Vec<String> = (1..=n_rows).map(|i| i.to_string()).collect();
            columns.push((Some("rank".to_string()), rank));
        }
        if rng.gen_bool(cfg.numeric_col_prob) {
            let nums: Vec<String> = (0..n_rows)
                .map(|_| format!("{}", rng.gen_range(1000..10_000_000)))
                .collect();
            columns.push((Some("value".to_string()), nums));
        }
        if rng.gen_bool(cfg.incoherent_col_prob) {
            let mixed: Vec<String> = (0..n_rows).map(|_| incoherent_cell(rng)).collect();
            columns.push((Some("location".to_string()), mixed));
        }

        // Column order shuffle (value pairs get extracted both ways).
        if rng.gen_bool(0.3) {
            columns.swap(0, 1);
        }

        let rel_name = self.relations[rel_idx].name.clone();
        let table = self.intern_table(domain, columns);
        if self.record_meta {
            self.table_relation.push(Some(rel_name));
        }
        table
    }

    /// One spurious-FD table: departure → arrival airports. Locally
    /// functional, globally meaningless (paper §1 "Spurious mappings").
    fn next_spurious_table(&mut self) -> Table {
        let rng = &mut self.rng;
        let domain = self.domain_ids[zipf_index(rng, self.domain_ids.len())];
        let rows = rng.gen_range(4..12);
        let mut dep = Vec::with_capacity(rows);
        let mut arr = Vec::with_capacity(rows);
        let mut used = std::collections::HashSet::new();
        for _ in 0..rows {
            let d = &airports::AIRPORTS[rng.gen_range(0..airports::AIRPORTS.len())];
            if !used.insert(d.iata) {
                continue;
            }
            let a = &airports::AIRPORTS[rng.gen_range(0..airports::AIRPORTS.len())];
            dep.push(d.name.to_string());
            arr.push(a.name.to_string());
        }
        let table = self.intern_table(
            domain,
            vec![
                (Some("departure".to_string()), dep),
                (Some("arrival".to_string()), arr),
            ],
        );
        if self.record_meta {
            self.table_relation.push(None);
        }
        table
    }

    /// One formatting table (month → month calendar fragment).
    fn next_formatting_table(&mut self) -> Table {
        let domain = self.domain_ids[zipf_index(&mut self.rng, self.domain_ids.len())];
        let first: Vec<String> = self.months[..6].iter().map(|m| m.to_string()).collect();
        let second: Vec<String> = self.months[6..12].iter().map(|m| m.to_string()).collect();
        let table = self.intern_table(domain, vec![(None, first), (None, second)]);
        if self.record_meta {
            self.table_relation.push(None);
        }
        table
    }
}

impl TableSource for WebTableStream {
    fn table_count(&self) -> usize {
        self.n_rel + self.n_spurious + self.n_fmt
    }

    fn interner(&self) -> &Interner {
        &self.interner
    }

    fn domain_names(&self) -> &[String] {
        &self.domain_names
    }

    fn next_table(&mut self) -> Option<Table> {
        if self.produced < self.n_rel {
            Some(self.next_relation_table())
        } else if self.produced < self.n_rel + self.n_spurious {
            Some(self.next_spurious_table())
        } else if self.produced < self.table_count() {
            Some(self.next_formatting_table())
        } else {
            None
        }
    }

    fn rewind(&mut self) {
        self.rng = StdRng::seed_from_u64(self.cfg.seed);
        self.produced = 0;
        // Metadata was fully captured on the first pass; re-recording
        // would duplicate `table_relation` entries.
        self.record_meta = false;
    }
}

/// Zipf-ish index sampler: favours low indices, long tail.
fn zipf_index(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.gen::<f64>();
    // Inverse CDF of a truncated power law with exponent ~1.
    let x = ((n as f64).powf(u) - 1.0).max(0.0);
    (x as usize).min(n - 1)
}

/// Sample a subset of entry indices for a table: a mix of popular-head,
/// alphabetical window, and random subsets — matching how web tables
/// fragment relations.
fn sample_entries(rng: &mut StdRng, total: usize, rows: usize) -> Vec<usize> {
    let rows = rows.min(total);
    match rng.gen_range(0..10u8) {
        // Popular head: first-k entities (web tables list the popular
        // entities far more often than the tail).
        0..=3 => (0..rows).collect(),
        // Contiguous window.
        4..=6 => {
            let start = rng.gen_range(0..=(total - rows));
            (start..start + rows).collect()
        }
        // Random subset.
        _ => {
            let mut idxs: Vec<usize> = (0..total).collect();
            idxs.shuffle(rng);
            idxs.truncate(rows);
            idxs.sort_unstable();
            idxs
        }
    }
}

/// Pick a surface form with per-table style consistency: mostly the
/// table's style, with a canonical-leaning per-row deviation.
fn pick_form<'a>(rng: &mut StdRng, forms: &'a [String], style: usize) -> &'a str {
    if forms.len() > 1 && rng.gen_bool(0.12) {
        // Per-row deviation: canonical half the time, any form else.
        if rng.gen_bool(0.5) {
            &forms[0]
        } else {
            &forms[rng.gen_range(0..forms.len())]
        }
    } else {
        &forms[style % forms.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> WebConfig {
        WebConfig {
            tables: 300,
            domains: 40,
            procedural: ProceduralConfig {
                families: 10,
                temporal_families: 1,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_scale() {
        let wc = generate_web(&small_cfg());
        assert!(wc.corpus.len() >= 300);
        assert_eq!(wc.corpus.len(), wc.table_relation.len());
        assert!(wc.registry.len() >= 35);
    }

    #[test]
    fn deterministic() {
        let a = generate_web(&small_cfg());
        let b = generate_web(&small_cfg());
        assert_eq!(a.corpus.len(), b.corpus.len());
        for (ta, tb) in a.corpus.tables.iter().zip(&b.corpus.tables) {
            assert_eq!(ta.width(), tb.width());
            assert_eq!(ta.rows(), tb.rows());
            for (ca, cb) in ta.columns.iter().zip(&tb.columns) {
                let va: Vec<&str> = ca.values.iter().map(|&s| a.corpus.str_of(s)).collect();
                let vb: Vec<&str> = cb.values.iter().map(|&s| b.corpus.str_of(s)).collect();
                assert_eq!(va, vb);
            }
        }
    }

    #[test]
    fn stream_matches_batch_bit_for_bit() {
        let cfg = small_cfg();
        let batch = generate_web(&cfg);
        let mut stream = WebTableStream::new(cfg);
        assert_eq!(stream.table_count(), batch.corpus.len());
        let mut i = 0usize;
        while let Some(t) = stream.next_table() {
            let bt = &batch.corpus.tables[i];
            // Same Sym ids, not just same strings: the stream's
            // interner must assign symbols in the batch order.
            assert_eq!(t.id, bt.id);
            assert_eq!(t.domain, bt.domain);
            assert_eq!(t.columns.len(), bt.columns.len());
            for (ca, cb) in t.columns.iter().zip(&bt.columns) {
                assert_eq!(ca.header, cb.header);
                assert_eq!(ca.values, cb.values);
            }
            i += 1;
        }
        assert_eq!(i, batch.corpus.len());
        assert_eq!(stream.interner().len(), batch.corpus.interner.len());
        assert_eq!(stream.domain_names(), &batch.corpus.domain_names[..]);
        assert_eq!(stream.table_relation, batch.table_relation);
        assert_eq!(stream.emitted_pairs, batch.emitted_pairs);
    }

    #[test]
    fn stream_rewind_replays_identically() {
        let mut stream = WebTableStream::new(small_cfg());
        let first: Vec<Table> = std::iter::from_fn(|| stream.next_table()).collect();
        let meta_len = stream.table_relation.len();
        stream.rewind();
        let second: Vec<Table> = std::iter::from_fn(|| stream.next_table()).collect();
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.domain, b.domain);
            for (ca, cb) in a.columns.iter().zip(&b.columns) {
                assert_eq!(ca.header, cb.header);
                assert_eq!(ca.values, cb.values);
            }
        }
        // Second pass interned nothing new and recorded no metadata.
        assert_eq!(stream.table_relation.len(), meta_len);
    }

    #[test]
    fn popular_relations_span_more_tables() {
        let wc = generate_web(&small_cfg());
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for r in wc.table_relation.iter().flatten() {
            *counts.entry(r.as_str()).or_default() += 1;
        }
        let iso3 = counts.get("country->iso3").copied().unwrap_or(0);
        assert!(iso3 >= 5, "country->iso3 only in {iso3} tables");
    }

    #[test]
    fn spurious_tables_present() {
        let wc = generate_web(&small_cfg());
        let unlabeled = wc.table_relation.iter().filter(|r| r.is_none()).count();
        assert!(unlabeled >= 5, "{unlabeled}");
    }

    #[test]
    fn tables_have_reasonable_shape() {
        let wc = generate_web(&small_cfg());
        for t in &wc.corpus.tables {
            assert!(t.width() >= 2);
            assert!(t.rows() >= 2, "table with {} rows", t.rows());
        }
    }
}
