//! # mapsynth-gen
//!
//! The corpus substrate. The paper's inputs — a 100M-table web crawl
//! and a 500K-table enterprise spreadsheet crawl — are proprietary, so
//! this crate builds the closest synthetic equivalent that exercises
//! the same code paths (see DESIGN.md "Substitutions"):
//!
//! * [`registry`] — a ground-truth registry of mapping relationships:
//!   ~40 families seeded with embedded real data (countries and their
//!   ISO/IOC/FIFA codes, US states, airports, stock tickers, chemical
//!   elements, …) plus procedurally generated families, each entity
//!   carrying multiple synonymous surface forms (paper Table 6);
//! * [`noise`] — the cell/table noise model: typos, footnote marks,
//!   case variation, wrong values, incoherent distractor columns,
//!   pivot-style mis-extraction;
//! * [`webgen`] — assembles a heterogeneous web-table corpus: short
//!   tables sampling fragments of relations, single-synonym mentions,
//!   undescriptive headers, spurious-FD tables, temporal tables,
//!   formatting tables (paper Figures 12–13);
//! * [`entgen`] — the enterprise-flavoured corpus of §5.5.
//!
//! Generation is fully deterministic given a seed:
//!
//! ```
//! use mapsynth_gen::procedural::ProceduralConfig;
//! use mapsynth_gen::{generate_web, WebConfig};
//!
//! let cfg = WebConfig {
//!     tables: 6,
//!     domains: 3,
//!     procedural: ProceduralConfig { families: 2, temporal_families: 0, ..Default::default() },
//!     ..Default::default()
//! };
//! let (a, b) = (generate_web(&cfg), generate_web(&cfg));
//! assert!(a.corpus.len() >= 6);
//! assert_eq!(a.corpus.len(), b.corpus.len());
//! assert_eq!(a.emitted_pairs, b.emitted_pairs);
//! ```

pub mod data;
pub mod entgen;
pub mod noise;
pub mod procedural;
pub mod registry;
pub mod webgen;
pub mod words;

pub use entgen::{generate_enterprise, EnterpriseConfig};
pub use noise::NoiseConfig;
pub use registry::{Entry, Registry, Relation, RelationKind};
pub use webgen::{generate_web, WebConfig, WebTableStream};
