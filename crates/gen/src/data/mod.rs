//! Embedded real-world data seeding the ground-truth registry.
//!
//! Each module exposes static records; [`build_real_relations`] turns
//! them into [`Relation`]s — the 14 geocoding systems of the paper's
//! Figure 6 plus the "list of A and B" style cases of Figure 5.

pub mod airports;
pub mod cars;
pub mod cities;
pub mod countries;
pub mod elements;
pub mod misc;
pub mod stocks;
pub mod us_states;

use crate::registry::{name_variants, Entry, Relation, RelationKind};

fn relation(
    name: &str,
    labels: (&str, &str),
    generic: (&str, &str),
    popularity: f64,
    entries: Vec<Entry>,
) -> Relation {
    Relation {
        name: name.to_string(),
        left_label: labels.0.to_string(),
        right_label: labels.1.to_string(),
        generic_left: generic.0.to_string(),
        generic_right: generic.1.to_string(),
        kind: RelationKind::Static,
        benchmark: true,
        popularity,
        entries,
    }
}

/// All relations derived from the embedded real data.
pub fn build_real_relations() -> Vec<Relation> {
    let mut out = Vec::new();

    // --- Country geocoding systems (paper Figure 6) ---
    let country_forms: Vec<Vec<String>> = countries::COUNTRIES
        .iter()
        .map(|c| {
            let mut forms = name_variants(c.name);
            for s in c.synonyms {
                forms.push((*s).to_string());
            }
            forms
        })
        .collect();
    let country_rel =
        |name: &str, right_label: &str, pop: f64, f: &dyn Fn(&countries::CountryRec) -> &str| {
            let entries = countries::COUNTRIES
                .iter()
                .zip(&country_forms)
                .filter(|(c, _)| !f(c).is_empty())
                .map(|(c, forms)| Entry::with_left_synonyms(forms.clone(), f(c)))
                .collect();
            relation(
                name,
                ("Country", right_label),
                ("name", "code"),
                pop,
                entries,
            )
        };
    out.push(country_rel(
        "country->iso3",
        "ISO 3166-1 Alpha-3",
        10.0,
        &|c| c.iso3,
    ));
    out.push(country_rel(
        "country->iso2",
        "ISO 3166-1 Alpha-2",
        9.0,
        &|c| c.iso2,
    ));
    out.push(country_rel("country->ioc", "IOC Country Code", 6.0, &|c| {
        c.ioc
    }));
    out.push(country_rel(
        "country->fifa",
        "FIFA Country Code",
        6.0,
        &|c| c.fifa,
    ));
    out.push(country_rel(
        "country->numeric",
        "ISO 3166-1 Numeric",
        4.0,
        &|c| c.num,
    ));
    out.push(country_rel(
        "country->calling",
        "ITU-T Calling Code",
        5.0,
        &|c| c.calling,
    ));
    out.push(country_rel("country->fips", "FIPS 10-4", 2.0, &|c| c.fips));
    out.push(country_rel("country->capital", "Capital", 8.0, &|c| {
        c.capital
    }));
    out.push(country_rel("country->currency", "Currency", 4.0, &|c| {
        c.currency
    }));
    out.push(country_rel(
        "country->currency-code",
        "Currency Code",
        4.0,
        &|c| c.cur_code,
    ));

    // Code-to-code mappings (paper Figure 12: ISO3 → ISO2).
    out.push(relation(
        "iso3->iso2",
        ("ISO 3166-1 Alpha-3", "ISO 3166-1 Alpha-2"),
        ("alpha3", "alpha2"),
        3.0,
        countries::COUNTRIES
            .iter()
            .map(|c| Entry::simple(c.iso3, c.iso2))
            .collect(),
    ));

    // --- US states (FIPS 5-2 family) ---
    let state_forms: Vec<Vec<String>> = us_states::STATES
        .iter()
        .map(|s| name_variants(s.name))
        .collect();
    let state_rel =
        |name: &str, right_label: &str, pop: f64, f: &dyn Fn(&us_states::StateRec) -> &str| {
            let entries = us_states::STATES
                .iter()
                .zip(&state_forms)
                .map(|(s, forms)| Entry::with_left_synonyms(forms.clone(), f(s)))
                .collect();
            relation(
                name,
                ("State", right_label),
                ("state", "value"),
                pop,
                entries,
            )
        };
    out.push(state_rel("state->abbr", "Abbreviation", 9.0, &|s| s.abbr));
    out.push(state_rel("state->fips", "FIPS 5-2", 2.0, &|s| s.fips));
    out.push(state_rel("state->capital", "Capital", 6.0, &|s| s.capital));
    out.push(state_rel(
        "state->largest-city",
        "Largest City",
        3.0,
        &|s| s.largest_city,
    ));

    // --- Airports (IATA / ICAO, Figure 6) ---
    out.push(relation(
        "airport->iata",
        ("Airport Name", "IATA"),
        ("airport", "code"),
        5.0,
        airports::AIRPORTS
            .iter()
            .map(|a| {
                let mut forms = vec![a.name.to_string()];
                for s in a.synonyms {
                    forms.push((*s).to_string());
                }
                Entry::with_left_synonyms(forms, a.iata)
            })
            .collect(),
    ));
    out.push(relation(
        "airport->icao",
        ("Airport Name", "ICAO"),
        ("airport", "code"),
        3.0,
        airports::AIRPORTS
            .iter()
            .map(|a| {
                let mut forms = vec![a.name.to_string()];
                for s in a.synonyms {
                    forms.push((*s).to_string());
                }
                Entry::with_left_synonyms(forms, a.icao)
            })
            .collect(),
    ));
    out.push(relation(
        "iata->city",
        ("IATA", "City"),
        ("code", "city"),
        2.0,
        airports::AIRPORTS
            .iter()
            .map(|a| Entry::simple(a.iata, a.city))
            .collect(),
    ));

    // --- Stock tickers (paper Table 1b) ---
    out.push(relation(
        "company->ticker",
        ("Company", "Ticker"),
        ("company", "symbol"),
        7.0,
        stocks::COMPANIES
            .iter()
            .map(|s| {
                let mut forms = vec![s.name.to_string()];
                for syn in s.synonyms {
                    forms.push((*syn).to_string());
                }
                Entry::with_left_synonyms(forms, s.ticker)
            })
            .collect(),
    ));

    // --- Chemical elements (paper Figure 4 / §K) ---
    out.push(relation(
        "element->symbol",
        ("Element", "Symbol"),
        ("name", "symbol"),
        6.0,
        elements::ELEMENTS
            .iter()
            .map(|e| Entry::simple(e.name, e.symbol))
            .collect(),
    ));
    out.push(relation(
        "element->atomic-number",
        ("Element", "Atomic Number"),
        ("name", "number"),
        4.0,
        elements::ELEMENTS
            .iter()
            .map(|e| Entry::simple(e.name, e.number))
            .collect(),
    ));
    out.push(relation(
        "symbol->atomic-number",
        ("Symbol", "Atomic Number"),
        ("symbol", "number"),
        2.0,
        elements::ELEMENTS
            .iter()
            .map(|e| Entry::simple(e.symbol, e.number))
            .collect(),
    ));

    // --- Cars (paper Table 2a, Figure 5) ---
    out.push(relation(
        "car-model->make",
        ("Model", "Make"),
        ("model", "make"),
        5.0,
        cars::CARS
            .iter()
            .map(|c| Entry::simple(c.model, c.make))
            .collect(),
    ));
    out.push(relation(
        "car-model->type",
        ("Model", "Type"),
        ("model", "type"),
        2.0,
        cars::CARS
            .iter()
            .map(|c| Entry::simple(c.model, c.body))
            .collect(),
    ));

    // --- US cities (paper Table 2b; includes ambiguous Portland/Springfield) ---
    out.push(relation(
        "city->state",
        ("City", "State"),
        ("city", "state"),
        8.0,
        cities::CITIES
            .iter()
            .map(|c| Entry::simple(c.city, c.state))
            .collect(),
    ));
    out.push(relation(
        "city->state-abbr",
        ("City", "State Abbr."),
        ("city", "state"),
        4.0,
        cities::CITIES
            .iter()
            .map(|c| Entry::simple(c.city, c.state_abbr))
            .collect(),
    ));

    // --- Misc "list of A and B" relations (paper Figure 5 / 12) ---
    out.extend(misc::misc_relations());

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_relations_build_and_are_mappings() {
        let rels = build_real_relations();
        assert!(rels.len() >= 25, "got {}", rels.len());
        for r in &rels {
            assert!(!r.is_empty(), "{} empty", r.name);
            let bad = r.fd_violations();
            assert!(
                bad.is_empty(),
                "{} violates FD on lefts {:?}",
                r.name,
                &bad[..bad.len().min(5)]
            );
        }
    }

    #[test]
    fn country_codes_conflict_across_standards() {
        // The ISO/IOC/FIFA standards must disagree on some countries —
        // the premise of the paper's negative-evidence design (Fig. 2).
        let rels = build_real_relations();
        let iso = rels.iter().find(|r| r.name == "country->iso3").unwrap();
        let ioc = rels.iter().find(|r| r.name == "country->ioc").unwrap();
        let iso_gt = iso.ground_truth_pairs();
        let ioc_gt = ioc.ground_truth_pairs();
        let iso_map: std::collections::HashMap<_, _> =
            iso_gt.iter().map(|(l, r)| (l.clone(), r.clone())).collect();
        let mut agree = 0;
        let mut disagree = 0;
        for (l, r) in &ioc_gt {
            if let Some(r2) = iso_map.get(l) {
                if r == r2 {
                    agree += 1;
                } else {
                    disagree += 1;
                }
            }
        }
        assert!(agree > 20, "agree={agree}");
        assert!(disagree > 10, "disagree={disagree}");
    }

    #[test]
    fn synonyms_present_for_countries() {
        let rels = build_real_relations();
        let iso = rels.iter().find(|r| r.name == "country->iso3").unwrap();
        let multi = iso.entries.iter().filter(|e| e.left.len() > 1).count();
        assert!(multi > 30, "only {multi} entries have synonyms");
    }
}
