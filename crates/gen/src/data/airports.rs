//! Airports with IATA and ICAO codes (paper Table 1d, Figure 6).
//!
//! IATA and ICAO are distinct coding systems over the same left
//! entities — like ISO vs IOC for countries, they produce high positive
//! overlap on names with conflicting codes, exercising the
//! negative-evidence machinery. Airports also drive the
//! table-expansion experiment (Appendix I): the relation is large and
//! tail airports rarely appear in web tables.

/// One airport record.
pub struct AirportRec {
    pub name: &'static str,
    pub iata: &'static str,
    pub icao: &'static str,
    pub city: &'static str,
    pub synonyms: &'static [&'static str],
}

macro_rules! a {
    ($n:literal, $i:literal, $c:literal, $city:literal, [$($syn:literal),*]) => {
        AirportRec { name: $n, iata: $i, icao: $c, city: $city, synonyms: &[$($syn),*] }
    };
}

/// The airport table.
pub const AIRPORTS: &[AirportRec] = &[
    a!(
        "Los Angeles International Airport",
        "LAX",
        "KLAX",
        "Los Angeles",
        ["LA International", "Los Angeles Intl"]
    ),
    a!(
        "San Francisco International Airport",
        "SFO",
        "KSFO",
        "San Francisco",
        ["San Francisco Intl"]
    ),
    a!(
        "John F. Kennedy International Airport",
        "JFK",
        "KJFK",
        "New York",
        ["JFK Airport", "New York JFK", "Kennedy International"]
    ),
    a!(
        "LaGuardia Airport",
        "LGA",
        "KLGA",
        "New York",
        ["La Guardia"]
    ),
    a!(
        "Newark Liberty International Airport",
        "EWR",
        "KEWR",
        "Newark",
        ["Newark International"]
    ),
    a!(
        "O'Hare International Airport",
        "ORD",
        "KORD",
        "Chicago",
        ["Chicago O'Hare", "Chicago O'Hare International"]
    ),
    a!(
        "Midway International Airport",
        "MDW",
        "KMDW",
        "Chicago",
        ["Chicago Midway"]
    ),
    a!(
        "Hartsfield-Jackson Atlanta International Airport",
        "ATL",
        "KATL",
        "Atlanta",
        ["Atlanta International", "Hartsfield Jackson"]
    ),
    a!(
        "Dallas/Fort Worth International Airport",
        "DFW",
        "KDFW",
        "Dallas",
        ["DFW International", "Dallas Fort Worth"]
    ),
    a!("Denver International Airport", "DEN", "KDEN", "Denver", []),
    a!(
        "Seattle-Tacoma International Airport",
        "SEA",
        "KSEA",
        "Seattle",
        ["SeaTac", "Seattle Tacoma"]
    ),
    a!("Miami International Airport", "MIA", "KMIA", "Miami", []),
    a!(
        "Orlando International Airport",
        "MCO",
        "KMCO",
        "Orlando",
        []
    ),
    a!(
        "Logan International Airport",
        "BOS",
        "KBOS",
        "Boston",
        ["Boston Logan"]
    ),
    a!(
        "Phoenix Sky Harbor International Airport",
        "PHX",
        "KPHX",
        "Phoenix",
        ["Sky Harbor"]
    ),
    a!(
        "George Bush Intercontinental Airport",
        "IAH",
        "KIAH",
        "Houston",
        ["Houston Intercontinental"]
    ),
    a!(
        "William P. Hobby Airport",
        "HOU",
        "KHOU",
        "Houston",
        ["Houston Hobby"]
    ),
    a!(
        "Minneapolis-Saint Paul International Airport",
        "MSP",
        "KMSP",
        "Minneapolis",
        ["MSP International"]
    ),
    a!(
        "Detroit Metropolitan Airport",
        "DTW",
        "KDTW",
        "Detroit",
        ["Detroit Metro"]
    ),
    a!(
        "Philadelphia International Airport",
        "PHL",
        "KPHL",
        "Philadelphia",
        []
    ),
    a!(
        "Charlotte Douglas International Airport",
        "CLT",
        "KCLT",
        "Charlotte",
        []
    ),
    a!(
        "McCarran International Airport",
        "LAS",
        "KLAS",
        "Las Vegas",
        [
            "Las Vegas International",
            "Harry Reid International Airport"
        ]
    ),
    a!(
        "Salt Lake City International Airport",
        "SLC",
        "KSLC",
        "Salt Lake City",
        []
    ),
    a!(
        "San Diego International Airport",
        "SAN",
        "KSAN",
        "San Diego",
        ["Lindbergh Field"]
    ),
    a!("Tampa International Airport", "TPA", "KTPA", "Tampa", []),
    a!(
        "Portland International Airport",
        "PDX",
        "KPDX",
        "Portland",
        []
    ),
    a!(
        "Washington Dulles International Airport",
        "IAD",
        "KIAD",
        "Washington",
        ["Dulles International"]
    ),
    a!(
        "Ronald Reagan Washington National Airport",
        "DCA",
        "KDCA",
        "Washington",
        ["Reagan National", "Washington National"]
    ),
    a!(
        "Baltimore/Washington International Airport",
        "BWI",
        "KBWI",
        "Baltimore",
        ["BWI Marshall"]
    ),
    a!(
        "Lambert-St. Louis International Airport",
        "STL",
        "KSTL",
        "St. Louis",
        ["St Louis Lambert"]
    ),
    a!(
        "London Heathrow Airport",
        "LHR",
        "EGLL",
        "London",
        ["Heathrow", "Heathrow Airport"]
    ),
    a!(
        "London Gatwick Airport",
        "LGW",
        "EGKK",
        "London",
        ["Gatwick"]
    ),
    a!(
        "London Stansted Airport",
        "STN",
        "EGSS",
        "London",
        ["Stansted"]
    ),
    a!(
        "Paris Charles de Gaulle Airport",
        "CDG",
        "LFPG",
        "Paris",
        ["Charles de Gaulle", "Roissy Airport", "Paris CDG"]
    ),
    a!("Paris Orly Airport", "ORY", "LFPO", "Paris", ["Orly"]),
    a!(
        "Frankfurt Airport",
        "FRA",
        "EDDF",
        "Frankfurt",
        ["Frankfurt am Main Airport", "Frankfurt International"]
    ),
    a!(
        "Munich Airport",
        "MUC",
        "EDDM",
        "Munich",
        ["Franz Josef Strauss Airport"]
    ),
    a!(
        "Amsterdam Airport Schiphol",
        "AMS",
        "EHAM",
        "Amsterdam",
        ["Schiphol", "Schiphol Airport"]
    ),
    a!(
        "Madrid-Barajas Airport",
        "MAD",
        "LEMD",
        "Madrid",
        ["Barajas", "Adolfo Suarez Madrid-Barajas"]
    ),
    a!(
        "Barcelona-El Prat Airport",
        "BCN",
        "LEBL",
        "Barcelona",
        ["El Prat"]
    ),
    a!(
        "Leonardo da Vinci International Airport",
        "FCO",
        "LIRF",
        "Rome",
        ["Rome Fiumicino", "Fiumicino Airport"]
    ),
    a!(
        "Zurich Airport",
        "ZRH",
        "LSZH",
        "Zurich",
        ["Kloten Airport"]
    ),
    a!(
        "Vienna International Airport",
        "VIE",
        "LOWW",
        "Vienna",
        ["Schwechat"]
    ),
    a!(
        "Copenhagen Airport",
        "CPH",
        "EKCH",
        "Copenhagen",
        ["Kastrup"]
    ),
    a!("Oslo Airport", "OSL", "ENGM", "Oslo", ["Gardermoen"]),
    a!(
        "Stockholm Arlanda Airport",
        "ARN",
        "ESSA",
        "Stockholm",
        ["Arlanda"]
    ),
    a!(
        "Helsinki-Vantaa Airport",
        "HEL",
        "EFHK",
        "Helsinki",
        ["Vantaa"]
    ),
    a!("Dublin Airport", "DUB", "EIDW", "Dublin", []),
    a!(
        "Lisbon Airport",
        "LIS",
        "LPPT",
        "Lisbon",
        ["Humberto Delgado Airport", "Portela Airport"]
    ),
    a!(
        "Athens International Airport",
        "ATH",
        "LGAV",
        "Athens",
        ["Eleftherios Venizelos"]
    ),
    a!("Istanbul Airport", "IST", "LTFM", "Istanbul", []),
    a!(
        "Sheremetyevo International Airport",
        "SVO",
        "UUEE",
        "Moscow",
        ["Moscow Sheremetyevo"]
    ),
    a!(
        "Domodedovo International Airport",
        "DME",
        "UUDD",
        "Moscow",
        ["Moscow Domodedovo"]
    ),
    a!(
        "Tokyo International Airport",
        "HND",
        "RJTT",
        "Tokyo",
        ["Haneda", "Haneda Airport", "Tokyo Haneda"]
    ),
    a!(
        "Narita International Airport",
        "NRT",
        "RJAA",
        "Tokyo",
        ["Narita", "Tokyo Narita"]
    ),
    a!(
        "Kansai International Airport",
        "KIX",
        "RJBB",
        "Osaka",
        ["Osaka Kansai"]
    ),
    a!(
        "Incheon International Airport",
        "ICN",
        "RKSI",
        "Seoul",
        ["Seoul Incheon"]
    ),
    a!(
        "Gimpo International Airport",
        "GMP",
        "RKSS",
        "Seoul",
        ["Seoul Gimpo"]
    ),
    a!(
        "Beijing Capital International Airport",
        "PEK",
        "ZBAA",
        "Beijing",
        ["Beijing Capital"]
    ),
    a!(
        "Beijing Daxing International Airport",
        "PKX",
        "ZBAD",
        "Beijing",
        ["Daxing"]
    ),
    a!(
        "Shanghai Pudong International Airport",
        "PVG",
        "ZSPD",
        "Shanghai",
        ["Pudong"]
    ),
    a!(
        "Shanghai Hongqiao International Airport",
        "SHA",
        "ZSSS",
        "Shanghai",
        ["Hongqiao"]
    ),
    a!(
        "Hong Kong International Airport",
        "HKG",
        "VHHH",
        "Hong Kong",
        ["Chek Lap Kok"]
    ),
    a!(
        "Taiwan Taoyuan International Airport",
        "TPE",
        "RCTP",
        "Taipei",
        ["Taoyuan"]
    ),
    a!(
        "Singapore Changi Airport",
        "SIN",
        "WSSS",
        "Singapore",
        ["Changi", "Changi Airport"]
    ),
    a!(
        "Suvarnabhumi Airport",
        "BKK",
        "VTBS",
        "Bangkok",
        ["Bangkok Suvarnabhumi"]
    ),
    a!(
        "Kuala Lumpur International Airport",
        "KUL",
        "WMKK",
        "Kuala Lumpur",
        ["KLIA"]
    ),
    a!(
        "Soekarno-Hatta International Airport",
        "CGK",
        "WIII",
        "Jakarta",
        ["Jakarta Soekarno Hatta"]
    ),
    a!(
        "Indira Gandhi International Airport",
        "DEL",
        "VIDP",
        "Delhi",
        ["Delhi International"]
    ),
    a!(
        "Chhatrapati Shivaji International Airport",
        "BOM",
        "VABB",
        "Mumbai",
        ["Mumbai International"]
    ),
    a!("Dubai International Airport", "DXB", "OMDB", "Dubai", []),
    a!(
        "Hamad International Airport",
        "DOH",
        "OTHH",
        "Doha",
        ["Doha Hamad"]
    ),
    a!(
        "King Abdulaziz International Airport",
        "JED",
        "OEJN",
        "Jeddah",
        ["Jeddah International"]
    ),
    a!(
        "Ben Gurion Airport",
        "TLV",
        "LLBG",
        "Tel Aviv",
        ["Tel Aviv Ben Gurion"]
    ),
    a!("Cairo International Airport", "CAI", "HECA", "Cairo", []),
    a!(
        "O. R. Tambo International Airport",
        "JNB",
        "FAOR",
        "Johannesburg",
        ["Johannesburg International", "Jan Smuts Airport"]
    ),
    a!(
        "Cape Town International Airport",
        "CPT",
        "FACT",
        "Cape Town",
        []
    ),
    a!(
        "Jomo Kenyatta International Airport",
        "NBO",
        "HKJK",
        "Nairobi",
        ["Nairobi International"]
    ),
    a!(
        "Murtala Muhammed International Airport",
        "LOS",
        "DNMM",
        "Lagos",
        ["Lagos International"]
    ),
    a!(
        "Toronto Pearson International Airport",
        "YYZ",
        "CYYZ",
        "Toronto",
        ["Pearson", "Toronto Pearson"]
    ),
    a!(
        "Vancouver International Airport",
        "YVR",
        "CYVR",
        "Vancouver",
        []
    ),
    a!(
        "Montreal-Trudeau International Airport",
        "YUL",
        "CYUL",
        "Montreal",
        ["Pierre Elliott Trudeau", "Montreal Trudeau"]
    ),
    a!(
        "Mexico City International Airport",
        "MEX",
        "MMMX",
        "Mexico City",
        ["Benito Juarez International"]
    ),
    a!(
        "Sao Paulo-Guarulhos International Airport",
        "GRU",
        "SBGR",
        "Sao Paulo",
        ["Guarulhos"]
    ),
    a!(
        "El Dorado International Airport",
        "BOG",
        "SKBO",
        "Bogota",
        ["Bogota El Dorado"]
    ),
    a!(
        "Jorge Chavez International Airport",
        "LIM",
        "SPJC",
        "Lima",
        ["Lima International"]
    ),
    a!(
        "Ministro Pistarini International Airport",
        "EZE",
        "SAEZ",
        "Buenos Aires",
        ["Ezeiza", "Buenos Aires Ezeiza"]
    ),
    a!(
        "Comodoro Arturo Merino Benitez International Airport",
        "SCL",
        "SCEL",
        "Santiago",
        ["Santiago International"]
    ),
    a!(
        "Sydney Kingsford Smith Airport",
        "SYD",
        "YSSY",
        "Sydney",
        ["Kingsford Smith", "Sydney Airport"]
    ),
    a!(
        "Melbourne Airport",
        "MEL",
        "YMML",
        "Melbourne",
        ["Tullamarine"]
    ),
    a!("Auckland Airport", "AKL", "NZAA", "Auckland", []),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_unique_and_shaped() {
        let mut iata = std::collections::HashSet::new();
        let mut icao = std::collections::HashSet::new();
        for a in AIRPORTS {
            assert_eq!(a.iata.len(), 3, "{}", a.name);
            assert_eq!(a.icao.len(), 4, "{}", a.name);
            assert!(iata.insert(a.iata), "dup IATA {}", a.iata);
            assert!(icao.insert(a.icao), "dup ICAO {}", a.icao);
        }
        assert!(AIRPORTS.len() >= 80);
    }
}
