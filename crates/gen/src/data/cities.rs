//! US cities → states (paper Table 2b).
//!
//! Deliberately *excludes* duplicate city names across states
//! (Portland OR/ME, Springfield IL/MA/MO are represented by their
//! largest-population state only) so the relation itself is a clean
//! mapping; the generator's `ambiguous_city_tables` option injects the
//! ambiguous duplicates into corpus tables, exercising the paper's
//! θ-approximate FD (Definition 2).

/// One city record.
pub struct CityRec {
    pub city: &'static str,
    pub state: &'static str,
    pub state_abbr: &'static str,
}

/// Ambiguous city names with their *other* state (injected as noise,
/// not part of ground truth).
pub struct AmbiguousCity {
    pub city: &'static str,
    pub other_state: &'static str,
}

macro_rules! ct {
    ($c:literal, $s:literal, $a:literal) => {
        CityRec {
            city: $c,
            state: $s,
            state_abbr: $a,
        }
    };
}

/// The city table.
pub const CITIES: &[CityRec] = &[
    ct!("New York City", "New York", "NY"),
    ct!("Los Angeles", "California", "CA"),
    ct!("Chicago", "Illinois", "IL"),
    ct!("Houston", "Texas", "TX"),
    ct!("Phoenix", "Arizona", "AZ"),
    ct!("Philadelphia", "Pennsylvania", "PA"),
    ct!("San Antonio", "Texas", "TX"),
    ct!("San Diego", "California", "CA"),
    ct!("Dallas", "Texas", "TX"),
    ct!("San Jose", "California", "CA"),
    ct!("Austin", "Texas", "TX"),
    ct!("Jacksonville", "Florida", "FL"),
    ct!("Fort Worth", "Texas", "TX"),
    ct!("Columbus", "Ohio", "OH"),
    ct!("Charlotte", "North Carolina", "NC"),
    ct!("San Francisco", "California", "CA"),
    ct!("Indianapolis", "Indiana", "IN"),
    ct!("Seattle", "Washington", "WA"),
    ct!("Denver", "Colorado", "CO"),
    ct!("Boston", "Massachusetts", "MA"),
    ct!("El Paso", "Texas", "TX"),
    ct!("Nashville", "Tennessee", "TN"),
    ct!("Detroit", "Michigan", "MI"),
    ct!("Oklahoma City", "Oklahoma", "OK"),
    ct!("Portland", "Oregon", "OR"),
    ct!("Las Vegas", "Nevada", "NV"),
    ct!("Memphis", "Tennessee", "TN"),
    ct!("Louisville", "Kentucky", "KY"),
    ct!("Baltimore", "Maryland", "MD"),
    ct!("Milwaukee", "Wisconsin", "WI"),
    ct!("Albuquerque", "New Mexico", "NM"),
    ct!("Tucson", "Arizona", "AZ"),
    ct!("Fresno", "California", "CA"),
    ct!("Sacramento", "California", "CA"),
    ct!("Kansas City", "Missouri", "MO"),
    ct!("Mesa", "Arizona", "AZ"),
    ct!("Atlanta", "Georgia", "GA"),
    ct!("Omaha", "Nebraska", "NE"),
    ct!("Colorado Springs", "Colorado", "CO"),
    ct!("Raleigh", "North Carolina", "NC"),
    ct!("Miami", "Florida", "FL"),
    ct!("Virginia Beach", "Virginia", "VA"),
    ct!("Oakland", "California", "CA"),
    ct!("Minneapolis", "Minnesota", "MN"),
    ct!("Tulsa", "Oklahoma", "OK"),
    ct!("Tampa", "Florida", "FL"),
    ct!("Arlington", "Texas", "TX"),
    ct!("New Orleans", "Louisiana", "LA"),
    ct!("Wichita", "Kansas", "KS"),
    ct!("Cleveland", "Ohio", "OH"),
    ct!("Bakersfield", "California", "CA"),
    ct!("Aurora", "Colorado", "CO"),
    ct!("Anaheim", "California", "CA"),
    ct!("Honolulu", "Hawaii", "HI"),
    ct!("Santa Ana", "California", "CA"),
    ct!("Riverside", "California", "CA"),
    ct!("Corpus Christi", "Texas", "TX"),
    ct!("Lexington", "Kentucky", "KY"),
    ct!("Stockton", "California", "CA"),
    ct!("Henderson", "Nevada", "NV"),
    ct!("Saint Paul", "Minnesota", "MN"),
    ct!("St. Louis", "Missouri", "MO"),
    ct!("Cincinnati", "Ohio", "OH"),
    ct!("Pittsburgh", "Pennsylvania", "PA"),
    ct!("Greensboro", "North Carolina", "NC"),
    ct!("Anchorage", "Alaska", "AK"),
    ct!("Plano", "Texas", "TX"),
    ct!("Lincoln", "Nebraska", "NE"),
    ct!("Orlando", "Florida", "FL"),
    ct!("Irvine", "California", "CA"),
    ct!("Newark", "New Jersey", "NJ"),
    ct!("Toledo", "Ohio", "OH"),
    ct!("Durham", "North Carolina", "NC"),
    ct!("Chula Vista", "California", "CA"),
    ct!("Fort Wayne", "Indiana", "IN"),
    ct!("Jersey City", "New Jersey", "NJ"),
    ct!("Buffalo", "New York", "NY"),
    ct!("Madison", "Wisconsin", "WI"),
    ct!("Chandler", "Arizona", "AZ"),
    ct!("Laredo", "Texas", "TX"),
    ct!("Spokane", "Washington", "WA"),
    ct!("Boise", "Idaho", "ID"),
    ct!("Richmond", "Virginia", "VA"),
    ct!("Des Moines", "Iowa", "IA"),
    ct!("Tacoma", "Washington", "WA"),
    ct!("Fontana", "California", "CA"),
    ct!("Salt Lake City", "Utah", "UT"),
    ct!("Springfield", "Illinois", "IL"),
    ct!("Birmingham", "Alabama", "AL"),
    ct!("Rochester", "New York", "NY"),
];

/// Ambiguous duplicates (injected by the noise model only).
pub const AMBIGUOUS: &[AmbiguousCity] = &[
    AmbiguousCity {
        city: "Portland",
        other_state: "Maine",
    },
    AmbiguousCity {
        city: "Springfield",
        other_state: "Massachusetts",
    },
    AmbiguousCity {
        city: "Springfield",
        other_state: "Missouri",
    },
    AmbiguousCity {
        city: "Columbus",
        other_state: "Georgia",
    },
    AmbiguousCity {
        city: "Aurora",
        other_state: "Illinois",
    },
    AmbiguousCity {
        city: "Arlington",
        other_state: "Virginia",
    },
    AmbiguousCity {
        city: "Richmond",
        other_state: "California",
    },
    AmbiguousCity {
        city: "Rochester",
        other_state: "Minnesota",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cities_unique_in_ground_truth() {
        let names: std::collections::HashSet<&str> = CITIES.iter().map(|c| c.city).collect();
        assert_eq!(names.len(), CITIES.len(), "ground truth must be a mapping");
        assert!(CITIES.len() >= 80);
    }

    #[test]
    fn ambiguous_conflict_with_ground_truth() {
        for a in AMBIGUOUS {
            let gt = CITIES.iter().find(|c| c.city == a.city).unwrap();
            assert_ne!(gt.state, a.other_state, "{}", a.city);
        }
    }
}
