//! Companies and stock tickers (paper Table 1b, Table 5).
//!
//! Company names have heavy synonym variation on the web ("Microsoft",
//! "Microsoft Corp", "Microsoft Corporation", "MSFT Corp") which
//! single-table baselines cannot cover.

/// One company record.
pub struct CompanyRec {
    pub name: &'static str,
    pub ticker: &'static str,
    pub synonyms: &'static [&'static str],
}

macro_rules! k {
    ($n:literal, $t:literal, [$($syn:literal),*]) => {
        CompanyRec { name: $n, ticker: $t, synonyms: &[$($syn),*] }
    };
}

/// The company table.
pub const COMPANIES: &[CompanyRec] = &[
    k!(
        "Microsoft Corporation",
        "MSFT",
        ["Microsoft", "Microsoft Corp", "Microsoft Corp."]
    ),
    k!(
        "Apple Inc",
        "AAPL",
        ["Apple", "Apple Computer", "Apple Incorporated"]
    ),
    k!(
        "Alphabet Inc",
        "GOOGL",
        ["Alphabet", "Google", "Google LLC"]
    ),
    k!("Amazon.com Inc", "AMZN", ["Amazon", "Amazon.com"]),
    k!(
        "Meta Platforms Inc",
        "META",
        ["Meta", "Facebook", "Meta Platforms"]
    ),
    k!("Oracle Corporation", "ORCL", ["Oracle", "Oracle Corp"]),
    k!("Intel Corporation", "INTC", ["Intel", "Intel Corp"]),
    k!(
        "International Business Machines",
        "IBM",
        ["IBM", "IBM Corp", "I.B.M."]
    ),
    k!(
        "General Electric",
        "GE",
        ["GE", "General Electric Company", "General Electric Co"]
    ),
    k!(
        "United Parcel Service",
        "UPS",
        ["UPS", "United Parcel Services"]
    ),
    k!(
        "Walmart Inc",
        "WMT",
        ["Walmart", "Wal-Mart", "Wal-Mart Stores"]
    ),
    k!(
        "The Coca-Cola Company",
        "KO",
        ["Coca-Cola", "Coca Cola", "Coke"]
    ),
    k!("PepsiCo Inc", "PEP", ["Pepsi", "PepsiCo"]),
    k!("Johnson & Johnson", "JNJ", ["Johnson and Johnson", "J&J"]),
    k!("Procter & Gamble", "PG", ["Procter and Gamble", "P&G"]),
    k!(
        "JPMorgan Chase",
        "JPM",
        ["JP Morgan", "JPMorgan", "JPMorgan Chase & Co"]
    ),
    k!("Bank of America", "BAC", ["BofA", "Bank of America Corp"]),
    k!(
        "Wells Fargo",
        "WFC",
        ["Wells Fargo & Company", "Wells Fargo Bank"]
    ),
    k!(
        "Goldman Sachs",
        "GS",
        ["The Goldman Sachs Group", "Goldman"]
    ),
    k!("Morgan Stanley", "MS", []),
    k!("Citigroup Inc", "C", ["Citigroup", "Citi", "Citibank"]),
    k!(
        "American Express",
        "AXP",
        ["Amex", "American Express Company"]
    ),
    k!("Visa Inc", "V", ["Visa"]),
    k!(
        "Mastercard Inc",
        "MA",
        ["Mastercard", "MasterCard Incorporated"]
    ),
    k!(
        "AT&T Inc",
        "T",
        ["AT&T", "ATT", "American Telephone and Telegraph"]
    ),
    k!("Verizon Communications", "VZ", ["Verizon"]),
    k!("Comcast Corporation", "CMCSA", ["Comcast", "Comcast Corp"]),
    k!(
        "The Walt Disney Company",
        "DIS",
        ["Disney", "Walt Disney", "Walt Disney Co"]
    ),
    k!("Netflix Inc", "NFLX", ["Netflix"]),
    k!("NVIDIA Corporation", "NVDA", ["NVIDIA", "Nvidia Corp"]),
    k!("Advanced Micro Devices", "AMD", ["AMD"]),
    k!("Qualcomm Inc", "QCOM", ["Qualcomm"]),
    k!("Cisco Systems", "CSCO", ["Cisco", "Cisco Systems Inc"]),
    k!("Adobe Inc", "ADBE", ["Adobe", "Adobe Systems"]),
    k!("Salesforce Inc", "CRM", ["Salesforce", "Salesforce.com"]),
    k!("Tesla Inc", "TSLA", ["Tesla", "Tesla Motors"]),
    k!(
        "Ford Motor Company",
        "F",
        ["Ford", "Ford Motor", "Ford Motor Co"]
    ),
    k!("General Motors", "GM", ["GM", "General Motors Company"]),
    k!("The Boeing Company", "BA", ["Boeing", "Boeing Co"]),
    k!(
        "Lockheed Martin",
        "LMT",
        ["Lockheed", "Lockheed Martin Corp"]
    ),
    k!("Caterpillar Inc", "CAT", ["Caterpillar", "CAT Inc"]),
    k!(
        "3M Company",
        "MMM",
        ["3M", "Minnesota Mining and Manufacturing"]
    ),
    k!("Honeywell International", "HON", ["Honeywell"]),
    k!(
        "ExxonMobil Corporation",
        "XOM",
        ["Exxon", "Exxon Mobil", "ExxonMobil"]
    ),
    k!("Chevron Corporation", "CVX", ["Chevron", "Chevron Corp"]),
    k!("ConocoPhillips", "COP", ["Conoco Phillips"]),
    k!("Pfizer Inc", "PFE", ["Pfizer"]),
    k!("Merck & Co", "MRK", ["Merck", "Merck and Co"]),
    k!("Eli Lilly and Company", "LLY", ["Eli Lilly", "Lilly"]),
    k!("AbbVie Inc", "ABBV", ["AbbVie"]),
    k!(
        "UnitedHealth Group",
        "UNH",
        ["UnitedHealth", "United Health"]
    ),
    k!("CVS Health", "CVS", ["CVS", "CVS Pharmacy"]),
    k!(
        "McDonald's Corporation",
        "MCD",
        ["McDonalds", "McDonald's", "McDonald's Corp"]
    ),
    k!(
        "Starbucks Corporation",
        "SBUX",
        ["Starbucks", "Starbucks Coffee"]
    ),
    k!("Nike Inc", "NKE", ["Nike"]),
    k!("The Home Depot", "HD", ["Home Depot", "Home Depot Inc"]),
    k!("Target Corporation", "TGT", ["Target", "Target Corp"]),
    k!("Costco Wholesale", "COST", ["Costco"]),
    k!("FedEx Corporation", "FDX", ["FedEx", "Federal Express"]),
    k!("Delta Air Lines", "DAL", ["Delta", "Delta Airlines"]),
    k!(
        "United Airlines Holdings",
        "UAL",
        ["United Airlines", "United"]
    ),
    k!("American Airlines Group", "AAL", ["American Airlines"]),
    k!("Southwest Airlines", "LUV", ["Southwest"]),
    k!("Marriott International", "MAR", ["Marriott"]),
    k!("Hilton Worldwide", "HLT", ["Hilton", "Hilton Hotels"]),
    k!("PayPal Holdings", "PYPL", ["PayPal"]),
    k!("Uber Technologies", "UBER", ["Uber"]),
    k!("Airbnb Inc", "ABNB", ["Airbnb"]),
    k!("Intuit Inc", "INTU", ["Intuit"]),
    k!("ServiceNow Inc", "NOW", ["ServiceNow"]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickers_unique() {
        let t: std::collections::HashSet<&str> = COMPANIES.iter().map(|c| c.ticker).collect();
        assert_eq!(t.len(), COMPANIES.len());
        assert!(COMPANIES.len() >= 60);
    }

    #[test]
    fn synonym_coverage_rich() {
        let with_syn = COMPANIES.iter().filter(|c| !c.synonyms.is_empty()).count();
        assert!(with_syn as f64 / COMPANIES.len() as f64 > 0.8);
    }
}
