//! US states: postal abbreviation, FIPS 5-2 code, capital, largest
//! city. Capitals vs largest cities intentionally disagree for many
//! states (Washington: Olympia vs Seattle) — the confusion pair the
//! paper's §5.6 uses to motivate conflict resolution.

/// One state record.
pub struct StateRec {
    pub name: &'static str,
    pub abbr: &'static str,
    pub fips: &'static str,
    pub capital: &'static str,
    pub largest_city: &'static str,
}

macro_rules! s {
    ($n:literal, $a:literal, $f:literal, $c:literal, $l:literal) => {
        StateRec {
            name: $n,
            abbr: $a,
            fips: $f,
            capital: $c,
            largest_city: $l,
        }
    };
}

/// The 50 states.
pub const STATES: &[StateRec] = &[
    s!("Alabama", "AL", "01", "Montgomery", "Huntsville"),
    s!("Alaska", "AK", "02", "Juneau", "Anchorage"),
    s!("Arizona", "AZ", "04", "Phoenix", "Phoenix"),
    s!("Arkansas", "AR", "05", "Little Rock", "Little Rock"),
    s!("California", "CA", "06", "Sacramento", "Los Angeles"),
    s!("Colorado", "CO", "08", "Denver", "Denver"),
    s!("Connecticut", "CT", "09", "Hartford", "Bridgeport"),
    s!("Delaware", "DE", "10", "Dover", "Wilmington"),
    s!("Florida", "FL", "12", "Tallahassee", "Jacksonville"),
    s!("Georgia", "GA", "13", "Atlanta", "Atlanta"),
    s!("Hawaii", "HI", "15", "Honolulu", "Honolulu"),
    s!("Idaho", "ID", "16", "Boise", "Boise"),
    s!("Illinois", "IL", "17", "Springfield", "Chicago"),
    s!("Indiana", "IN", "18", "Indianapolis", "Indianapolis"),
    s!("Iowa", "IA", "19", "Des Moines", "Des Moines"),
    s!("Kansas", "KS", "20", "Topeka", "Wichita"),
    s!("Kentucky", "KY", "21", "Frankfort", "Louisville"),
    s!("Louisiana", "LA", "22", "Baton Rouge", "New Orleans"),
    s!("Maine", "ME", "23", "Augusta", "Portland"),
    s!("Maryland", "MD", "24", "Annapolis", "Baltimore"),
    s!("Massachusetts", "MA", "25", "Boston", "Boston"),
    s!("Michigan", "MI", "26", "Lansing", "Detroit"),
    s!("Minnesota", "MN", "27", "Saint Paul", "Minneapolis"),
    s!("Mississippi", "MS", "28", "Jackson", "Jackson"),
    s!("Missouri", "MO", "29", "Jefferson City", "Kansas City"),
    s!("Montana", "MT", "30", "Helena", "Billings"),
    s!("Nebraska", "NE", "31", "Lincoln", "Omaha"),
    s!("Nevada", "NV", "32", "Carson City", "Las Vegas"),
    s!("New Hampshire", "NH", "33", "Concord", "Manchester"),
    s!("New Jersey", "NJ", "34", "Trenton", "Newark"),
    s!("New Mexico", "NM", "35", "Santa Fe", "Albuquerque"),
    s!("New York", "NY", "36", "Albany", "New York City"),
    s!("North Carolina", "NC", "37", "Raleigh", "Charlotte"),
    s!("North Dakota", "ND", "38", "Bismarck", "Fargo"),
    s!("Ohio", "OH", "39", "Columbus", "Columbus"),
    s!("Oklahoma", "OK", "40", "Oklahoma City", "Oklahoma City"),
    s!("Oregon", "OR", "41", "Salem", "Portland"),
    s!("Pennsylvania", "PA", "42", "Harrisburg", "Philadelphia"),
    s!("Rhode Island", "RI", "44", "Providence", "Providence"),
    s!("South Carolina", "SC", "45", "Columbia", "Charleston"),
    s!("South Dakota", "SD", "46", "Pierre", "Sioux Falls"),
    s!("Tennessee", "TN", "47", "Nashville", "Nashville"),
    s!("Texas", "TX", "48", "Austin", "Houston"),
    s!("Utah", "UT", "49", "Salt Lake City", "Salt Lake City"),
    s!("Vermont", "VT", "50", "Montpelier", "Burlington"),
    s!("Virginia", "VA", "51", "Richmond", "Virginia Beach"),
    s!("Washington", "WA", "53", "Olympia", "Seattle"),
    s!("West Virginia", "WV", "54", "Charleston", "Charleston"),
    s!("Wisconsin", "WI", "55", "Madison", "Milwaukee"),
    s!("Wyoming", "WY", "56", "Cheyenne", "Cheyenne"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_states_unique() {
        assert_eq!(STATES.len(), 50);
        let abbrs: std::collections::HashSet<&str> = STATES.iter().map(|s| s.abbr).collect();
        assert_eq!(abbrs.len(), 50);
    }

    #[test]
    fn capital_vs_largest_disagree_somewhere() {
        let diff = STATES
            .iter()
            .filter(|s| s.capital != s.largest_city)
            .count();
        assert!(diff >= 25, "only {diff} states differ");
        let wa = STATES.iter().find(|s| s.name == "Washington").unwrap();
        assert_eq!(wa.capital, "Olympia");
        assert_eq!(wa.largest_city, "Seattle");
    }
}
