//! Miscellaneous "list of A and B" relations (paper Figures 5 and 12):
//! months, currencies, Beaufort scale, ASCII control codes, Greek
//! letters, NATO phonetic alphabet, planets, zodiac, Roman numerals,
//! HTTP status codes, weekdays, family-member gender.

use crate::registry::{Entry, Relation, RelationKind};

fn rel(
    name: &str,
    labels: (&str, &str),
    generic: (&str, &str),
    pop: f64,
    pairs: &[(&str, &str)],
) -> Relation {
    Relation {
        name: name.to_string(),
        left_label: labels.0.to_string(),
        right_label: labels.1.to_string(),
        generic_left: generic.0.to_string(),
        generic_right: generic.1.to_string(),
        kind: RelationKind::Static,
        benchmark: true,
        popularity: pop,
        entries: pairs.iter().map(|(l, r)| Entry::simple(l, r)).collect(),
    }
}

/// Build all miscellaneous relations.
#[allow(clippy::vec_init_then_push)]
pub fn misc_relations() -> Vec<Relation> {
    let mut out = Vec::new();

    out.push(rel(
        "month->number",
        ("Month", "Number"),
        ("month", "num"),
        5.0,
        &[
            ("January", "1"),
            ("February", "2"),
            ("March", "3"),
            ("April", "4"),
            ("May", "5"),
            ("June", "6"),
            ("July", "7"),
            ("August", "8"),
            ("September", "9"),
            ("October", "10"),
            ("November", "11"),
            ("December", "12"),
        ],
    ));

    out.push(rel(
        "month->abbr",
        ("Month", "Abbreviation"),
        ("month", "abbr"),
        4.0,
        &[
            ("January", "Jan"),
            ("February", "Feb"),
            ("March", "Mar"),
            ("April", "Apr"),
            ("May", "May"),
            ("June", "Jun"),
            ("July", "Jul"),
            ("August", "Aug"),
            ("September", "Sep"),
            ("October", "Oct"),
            ("November", "Nov"),
            ("December", "Dec"),
        ],
    ));

    out.push(rel(
        "weekday->number",
        ("Weekday", "Number"),
        ("day", "num"),
        3.0,
        &[
            ("Monday", "1"),
            ("Tuesday", "2"),
            ("Wednesday", "3"),
            ("Thursday", "4"),
            ("Friday", "5"),
            ("Saturday", "6"),
            ("Sunday", "7"),
        ],
    ));

    // ISO 4217: currency code → numeric (paper Figure 12).
    out.push(rel(
        "currency-code->num",
        ("ISO 4217 Code", "Numeric"),
        ("code", "num"),
        2.0,
        &[
            ("USD", "840"),
            ("EUR", "978"),
            ("GBP", "826"),
            ("JPY", "392"),
            ("CHF", "756"),
            ("CAD", "124"),
            ("AUD", "036"),
            ("NZD", "554"),
            ("CNY", "156"),
            ("INR", "356"),
            ("BRL", "986"),
            ("MXN", "484"),
            ("KRW", "410"),
            ("SGD", "702"),
            ("HKD", "344"),
            ("SEK", "752"),
            ("NOK", "578"),
            ("DKK", "208"),
            ("PLN", "985"),
            ("CZK", "203"),
            ("HUF", "348"),
            ("RUB", "643"),
            ("TRY", "949"),
            ("ZAR", "710"),
            ("ILS", "376"),
            ("AED", "784"),
            ("SAR", "682"),
            ("THB", "764"),
            ("MYR", "458"),
            ("IDR", "360"),
            ("PHP", "608"),
            ("VND", "704"),
        ],
    ));

    // Beaufort scale (paper Figure 12).
    out.push(rel(
        "wind->beaufort",
        ("Wind Description", "Beaufort Scale"),
        ("wind", "scale"),
        1.5,
        &[
            ("calm", "0"),
            ("light air", "1"),
            ("light breeze", "2"),
            ("gentle breeze", "3"),
            ("moderate breeze", "4"),
            ("fresh breeze", "5"),
            ("strong breeze", "6"),
            ("near gale", "7"),
            ("gale", "8"),
            ("strong gale", "9"),
            ("storm", "10"),
            ("violent storm", "11"),
            ("hurricane", "12"),
        ],
    ));

    // ASCII control code abbreviations (paper Figure 12).
    out.push(rel(
        "ascii-abbr->code",
        ("ASCII Abbr.", "Code"),
        ("abbr", "code"),
        1.5,
        &[
            ("NUL", "0"),
            ("SOH", "1"),
            ("STX", "2"),
            ("ETX", "3"),
            ("EOT", "4"),
            ("ENQ", "5"),
            ("ACK", "6"),
            ("BEL", "7"),
            ("BS", "8"),
            ("HT", "9"),
            ("LF", "10"),
            ("VT", "11"),
            ("FF", "12"),
            ("CR", "13"),
            ("SO", "14"),
            ("SI", "15"),
            ("DLE", "16"),
            ("DC1", "17"),
            ("DC2", "18"),
            ("DC3", "19"),
            ("DC4", "20"),
            ("NAK", "21"),
            ("SYN", "22"),
            ("ETB", "23"),
            ("CAN", "24"),
            ("EM", "25"),
            ("SUB", "26"),
            ("ESC", "27"),
            ("FS", "28"),
            ("GS", "29"),
            ("RS", "30"),
            ("US", "31"),
            ("DEL", "127"),
        ],
    ));

    out.push(rel(
        "family-member->gender",
        ("Family Member", "Gender"),
        ("member", "gender"),
        1.0,
        &[
            ("Mother", "F"),
            ("Father", "M"),
            ("Brother", "M"),
            ("Sister", "F"),
            ("Son", "M"),
            ("Daughter", "F"),
            ("Grandmother", "F"),
            ("Grandfather", "M"),
            ("Uncle", "M"),
            ("Aunt", "F"),
            ("Nephew", "M"),
            ("Niece", "F"),
            ("Husband", "M"),
            ("Wife", "F"),
        ],
    ));

    out.push(rel(
        "greek-letter->symbol",
        ("Greek Letter", "Symbol"),
        ("letter", "symbol"),
        2.0,
        &[
            ("Alpha", "α"),
            ("Beta", "β"),
            ("Gamma", "γ"),
            ("Delta", "δ"),
            ("Epsilon", "ε"),
            ("Zeta", "ζ"),
            ("Eta", "η"),
            ("Theta", "θ"),
            ("Iota", "ι"),
            ("Kappa", "κ"),
            ("Lambda", "λ"),
            ("Mu", "μ"),
            ("Nu", "ν"),
            ("Xi", "ξ"),
            ("Omicron", "ο"),
            ("Pi", "π"),
            ("Rho", "ρ"),
            ("Sigma", "σ"),
            ("Tau", "τ"),
            ("Upsilon", "υ"),
            ("Phi", "φ"),
            ("Chi", "χ"),
            ("Psi", "ψ"),
            ("Omega", "ω"),
        ],
    ));

    out.push(rel(
        "nato->letter",
        ("NATO Phonetic", "Letter"),
        ("word", "letter"),
        2.0,
        &[
            ("Alfa", "A"),
            ("Bravo", "B"),
            ("Charlie", "C"),
            ("Delta", "D"),
            ("Echo", "E"),
            ("Foxtrot", "F"),
            ("Golf", "G"),
            ("Hotel", "H"),
            ("India", "I"),
            ("Juliett", "J"),
            ("Kilo", "K"),
            ("Lima", "L"),
            ("Mike", "M"),
            ("November", "N"),
            ("Oscar", "O"),
            ("Papa", "P"),
            ("Quebec", "Q"),
            ("Romeo", "R"),
            ("Sierra", "S"),
            ("Tango", "T"),
            ("Uniform", "U"),
            ("Victor", "V"),
            ("Whiskey", "W"),
            ("Xray", "X"),
            ("Yankee", "Y"),
            ("Zulu", "Z"),
        ],
    ));

    out.push(rel(
        "planet->order",
        ("Planet", "Order from Sun"),
        ("planet", "order"),
        2.0,
        &[
            ("Mercury", "1"),
            ("Venus", "2"),
            ("Earth", "3"),
            ("Mars", "4"),
            ("Jupiter", "5"),
            ("Saturn", "6"),
            ("Uranus", "7"),
            ("Neptune", "8"),
        ],
    ));

    out.push(rel(
        "zodiac->element",
        ("Zodiac Sign", "Element"),
        ("sign", "element"),
        1.2,
        &[
            ("Aries", "Fire"),
            ("Taurus", "Earth"),
            ("Gemini", "Air"),
            ("Cancer", "Water"),
            ("Leo", "Fire"),
            ("Virgo", "Earth"),
            ("Libra", "Air"),
            ("Scorpio", "Water"),
            ("Sagittarius", "Fire"),
            ("Capricorn", "Earth"),
            ("Aquarius", "Air"),
            ("Pisces", "Water"),
        ],
    ));

    out.push(rel(
        "roman->arabic",
        ("Roman Numeral", "Arabic"),
        ("roman", "number"),
        1.5,
        &[
            ("I", "1"),
            ("II", "2"),
            ("III", "3"),
            ("IV", "4"),
            ("V", "5"),
            ("VI", "6"),
            ("VII", "7"),
            ("VIII", "8"),
            ("IX", "9"),
            ("X", "10"),
            ("XX", "20"),
            ("XXX", "30"),
            ("XL", "40"),
            ("L", "50"),
            ("XC", "90"),
            ("C", "100"),
            ("D", "500"),
            ("M", "1000"),
        ],
    ));

    out.push(rel(
        "http-status->reason",
        ("HTTP Status", "Reason Phrase"),
        ("status", "reason"),
        2.5,
        &[
            ("100", "Continue"),
            ("200", "OK"),
            ("201", "Created"),
            ("204", "No Content"),
            ("301", "Moved Permanently"),
            ("302", "Found"),
            ("304", "Not Modified"),
            ("400", "Bad Request"),
            ("401", "Unauthorized"),
            ("403", "Forbidden"),
            ("404", "Not Found"),
            ("405", "Method Not Allowed"),
            ("408", "Request Timeout"),
            ("409", "Conflict"),
            ("410", "Gone"),
            ("418", "I'm a teapot"),
            ("429", "Too Many Requests"),
            ("500", "Internal Server Error"),
            ("501", "Not Implemented"),
            ("502", "Bad Gateway"),
            ("503", "Service Unavailable"),
            ("504", "Gateway Timeout"),
        ],
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_misc_are_valid_mappings() {
        for r in misc_relations() {
            assert!(r.fd_violations().is_empty(), "{}", r.name);
            assert!(r.len() >= 7, "{} too small", r.name);
        }
    }

    #[test]
    fn count() {
        assert!(misc_relations().len() >= 12);
    }
}
