//! Chemical elements (paper Figure 4: the dirty element→symbol table
//! whose wrong symbols motivate conflict resolution).

/// One element record.
pub struct ElementRec {
    pub name: &'static str,
    pub symbol: &'static str,
    pub number: &'static str,
}

macro_rules! e {
    ($n:literal, $s:literal, $z:literal) => {
        ElementRec {
            name: $n,
            symbol: $s,
            number: $z,
        }
    };
}

/// The periodic table (1–103).
pub const ELEMENTS: &[ElementRec] = &[
    e!("Hydrogen", "H", "1"),
    e!("Helium", "He", "2"),
    e!("Lithium", "Li", "3"),
    e!("Beryllium", "Be", "4"),
    e!("Boron", "B", "5"),
    e!("Carbon", "C", "6"),
    e!("Nitrogen", "N", "7"),
    e!("Oxygen", "O", "8"),
    e!("Fluorine", "F", "9"),
    e!("Neon", "Ne", "10"),
    e!("Sodium", "Na", "11"),
    e!("Magnesium", "Mg", "12"),
    e!("Aluminium", "Al", "13"),
    e!("Silicon", "Si", "14"),
    e!("Phosphorus", "P", "15"),
    e!("Sulfur", "S", "16"),
    e!("Chlorine", "Cl", "17"),
    e!("Argon", "Ar", "18"),
    e!("Potassium", "K", "19"),
    e!("Calcium", "Ca", "20"),
    e!("Scandium", "Sc", "21"),
    e!("Titanium", "Ti", "22"),
    e!("Vanadium", "V", "23"),
    e!("Chromium", "Cr", "24"),
    e!("Manganese", "Mn", "25"),
    e!("Iron", "Fe", "26"),
    e!("Cobalt", "Co", "27"),
    e!("Nickel", "Ni", "28"),
    e!("Copper", "Cu", "29"),
    e!("Zinc", "Zn", "30"),
    e!("Gallium", "Ga", "31"),
    e!("Germanium", "Ge", "32"),
    e!("Arsenic", "As", "33"),
    e!("Selenium", "Se", "34"),
    e!("Bromine", "Br", "35"),
    e!("Krypton", "Kr", "36"),
    e!("Rubidium", "Rb", "37"),
    e!("Strontium", "Sr", "38"),
    e!("Yttrium", "Y", "39"),
    e!("Zirconium", "Zr", "40"),
    e!("Niobium", "Nb", "41"),
    e!("Molybdenum", "Mo", "42"),
    e!("Technetium", "Tc", "43"),
    e!("Ruthenium", "Ru", "44"),
    e!("Rhodium", "Rh", "45"),
    e!("Palladium", "Pd", "46"),
    e!("Silver", "Ag", "47"),
    e!("Cadmium", "Cd", "48"),
    e!("Indium", "In", "49"),
    e!("Tin", "Sn", "50"),
    e!("Antimony", "Sb", "51"),
    e!("Tellurium", "Te", "52"),
    e!("Iodine", "I", "53"),
    e!("Xenon", "Xe", "54"),
    e!("Caesium", "Cs", "55"),
    e!("Barium", "Ba", "56"),
    e!("Lanthanum", "La", "57"),
    e!("Cerium", "Ce", "58"),
    e!("Praseodymium", "Pr", "59"),
    e!("Neodymium", "Nd", "60"),
    e!("Promethium", "Pm", "61"),
    e!("Samarium", "Sm", "62"),
    e!("Europium", "Eu", "63"),
    e!("Gadolinium", "Gd", "64"),
    e!("Terbium", "Tb", "65"),
    e!("Dysprosium", "Dy", "66"),
    e!("Holmium", "Ho", "67"),
    e!("Erbium", "Er", "68"),
    e!("Thulium", "Tm", "69"),
    e!("Ytterbium", "Yb", "70"),
    e!("Lutetium", "Lu", "71"),
    e!("Hafnium", "Hf", "72"),
    e!("Tantalum", "Ta", "73"),
    e!("Tungsten", "W", "74"),
    e!("Rhenium", "Re", "75"),
    e!("Osmium", "Os", "76"),
    e!("Iridium", "Ir", "77"),
    e!("Platinum", "Pt", "78"),
    e!("Gold", "Au", "79"),
    e!("Mercury", "Hg", "80"),
    e!("Thallium", "Tl", "81"),
    e!("Lead", "Pb", "82"),
    e!("Bismuth", "Bi", "83"),
    e!("Polonium", "Po", "84"),
    e!("Astatine", "At", "85"),
    e!("Radon", "Rn", "86"),
    e!("Francium", "Fr", "87"),
    e!("Radium", "Ra", "88"),
    e!("Actinium", "Ac", "89"),
    e!("Thorium", "Th", "90"),
    e!("Protactinium", "Pa", "91"),
    e!("Uranium", "U", "92"),
    e!("Neptunium", "Np", "93"),
    e!("Plutonium", "Pu", "94"),
    e!("Americium", "Am", "95"),
    e!("Curium", "Cm", "96"),
    e!("Berkelium", "Bk", "97"),
    e!("Californium", "Cf", "98"),
    e!("Einsteinium", "Es", "99"),
    e!("Fermium", "Fm", "100"),
    e!("Mendelevium", "Md", "101"),
    e!("Nobelium", "No", "102"),
    e!("Lawrencium", "Lr", "103"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_unique_and_numbers_sequential() {
        let syms: std::collections::HashSet<&str> = ELEMENTS.iter().map(|e| e.symbol).collect();
        assert_eq!(syms.len(), ELEMENTS.len());
        for (i, e) in ELEMENTS.iter().enumerate() {
            assert_eq!(e.number, (i + 1).to_string());
        }
        assert!(ELEMENTS.len() >= 100);
    }
}
