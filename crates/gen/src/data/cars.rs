//! Car models, makes and body types (paper Table 2a and Figure 12's
//! `(automobile → type)`). Model → make is a many-to-one mapping.

/// One car record.
pub struct CarRec {
    pub model: &'static str,
    pub make: &'static str,
    pub body: &'static str,
}

macro_rules! car {
    ($m:literal, $k:literal, $b:literal) => {
        CarRec {
            model: $m,
            make: $k,
            body: $b,
        }
    };
}

/// The car table.
pub const CARS: &[CarRec] = &[
    car!("F-150", "Ford", "Truck"),
    car!("Mustang", "Ford", "Coupe"),
    car!("Explorer", "Ford", "SUV"),
    car!("Escape", "Ford", "SUV"),
    car!("Focus", "Ford", "Sedan"),
    car!("Fusion", "Ford", "Sedan"),
    car!("Ranger", "Ford", "Truck"),
    car!("Bronco", "Ford", "SUV"),
    car!("Accord", "Honda", "Sedan"),
    car!("Civic", "Honda", "Sedan"),
    car!("CR-V", "Honda", "SUV"),
    car!("Pilot", "Honda", "SUV"),
    car!("Odyssey", "Honda", "Minivan"),
    car!("Ridgeline", "Honda", "Truck"),
    car!("Camry", "Toyota", "Sedan"),
    car!("Corolla", "Toyota", "Sedan"),
    car!("RAV4", "Toyota", "SUV"),
    car!("Highlander", "Toyota", "SUV"),
    car!("Tacoma", "Toyota", "Truck"),
    car!("Tundra", "Toyota", "Truck"),
    car!("Prius", "Toyota", "Hatchback"),
    car!("Sienna", "Toyota", "Minivan"),
    car!("4Runner", "Toyota", "SUV"),
    car!("Charger", "Dodge", "Sedan"),
    car!("Challenger", "Dodge", "Coupe"),
    car!("Durango", "Dodge", "SUV"),
    car!("Grand Caravan", "Dodge", "Minivan"),
    car!("Silverado", "Chevrolet", "Truck"),
    car!("Malibu", "Chevrolet", "Sedan"),
    car!("Equinox", "Chevrolet", "SUV"),
    car!("Tahoe", "Chevrolet", "SUV"),
    car!("Suburban", "Chevrolet", "SUV"),
    car!("Corvette", "Chevrolet", "Coupe"),
    car!("Camaro", "Chevrolet", "Coupe"),
    car!("Colorado", "Chevrolet", "Truck"),
    car!("Altima", "Nissan", "Sedan"),
    car!("Sentra", "Nissan", "Sedan"),
    car!("Rogue", "Nissan", "SUV"),
    car!("Pathfinder", "Nissan", "SUV"),
    car!("Frontier", "Nissan", "Truck"),
    car!("Leaf", "Nissan", "Hatchback"),
    car!("Maxima", "Nissan", "Sedan"),
    car!("Elantra", "Hyundai", "Sedan"),
    car!("Sonata", "Hyundai", "Sedan"),
    car!("Tucson", "Hyundai", "SUV"),
    car!("Santa Fe", "Hyundai", "SUV"),
    car!("Palisade", "Hyundai", "SUV"),
    car!("Sorento", "Kia", "SUV"),
    car!("Sportage", "Kia", "SUV"),
    car!("Telluride", "Kia", "SUV"),
    car!("Optima", "Kia", "Sedan"),
    car!("Soul", "Kia", "Hatchback"),
    car!("Outback", "Subaru", "Wagon"),
    car!("Forester", "Subaru", "SUV"),
    car!("Impreza", "Subaru", "Sedan"),
    car!("Crosstrek", "Subaru", "SUV"),
    car!("3 Series", "BMW", "Sedan"),
    car!("5 Series", "BMW", "Sedan"),
    car!("X3", "BMW", "SUV"),
    car!("X5", "BMW", "SUV"),
    car!("C-Class", "Mercedes-Benz", "Sedan"),
    car!("E-Class", "Mercedes-Benz", "Sedan"),
    car!("GLE", "Mercedes-Benz", "SUV"),
    car!("A4", "Audi", "Sedan"),
    car!("Q5", "Audi", "SUV"),
    car!("Golf", "Volkswagen", "Hatchback"),
    car!("Jetta", "Volkswagen", "Sedan"),
    car!("Tiguan", "Volkswagen", "SUV"),
    car!("Passat", "Volkswagen", "Sedan"),
    car!("Model S", "Tesla", "Sedan"),
    car!("Model 3", "Tesla", "Sedan"),
    car!("Model X", "Tesla", "SUV"),
    car!("Model Y", "Tesla", "SUV"),
    car!("Wrangler", "Jeep", "SUV"),
    car!("Grand Cherokee", "Jeep", "SUV"),
    car!("Cherokee", "Jeep", "SUV"),
    car!("Gladiator", "Jeep", "Truck"),
    car!("CX-5", "Mazda", "SUV"),
    car!("Mazda3", "Mazda", "Sedan"),
    car!("MX-5 Miata", "Mazda", "Convertible"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_unique_and_many_to_one() {
        let models: std::collections::HashSet<&str> = CARS.iter().map(|c| c.model).collect();
        assert_eq!(models.len(), CARS.len());
        let makes: std::collections::HashSet<&str> = CARS.iter().map(|c| c.make).collect();
        assert!(makes.len() < CARS.len(), "must be N:1");
        assert!(CARS.len() >= 70);
    }
}
