//! Ground-truth mapping relationship registry.
//!
//! The registry is the generator's source of truth *and* the evaluation
//! benchmark: each [`Relation`] holds the complete set of entity
//! entries, every entity carrying all of its synonymous surface forms.
//! Web/enterprise tables are sampled fragments of these relations, and
//! the benchmark ground truth for a case is the full synonym
//! cross-product (mirroring the paper's benchmark, which merges
//! high-quality web tables with Freebase/YAGO instances so that
//! "the resulting mapping relationships have rich synonyms ... as well
//! as more comprehensive coverage", §5.1).

use mapsynth_text::normalize;
use std::collections::HashSet;

/// Category of a relationship, matching the curation analysis of
/// Appendix J (static / temporal / meaningless).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RelationKind {
    /// A meaningful static mapping (country → code).
    Static,
    /// Meaningful but time-varying (team → league points); valid only
    /// for a point in time, produces many parallel versions.
    Temporal,
    /// A formatting artifact (month → month six apart) that repeats on
    /// the web without conceptual meaning.
    Formatting,
    /// A locally-functional but conceptually meaningless pair
    /// (departure airport → arrival airport in one flight list).
    Spurious,
}

/// One entity of a relation: all left surface forms and all right
/// surface forms. Any left form maps to any right form.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Synonymous surface forms of the left value. First is canonical.
    pub left: Vec<String>,
    /// Synonymous surface forms of the right value. First is canonical.
    pub right: Vec<String>,
}

impl Entry {
    /// Entry with a single form on each side.
    pub fn simple(left: &str, right: &str) -> Self {
        Self {
            left: vec![left.to_string()],
            right: vec![right.to_string()],
        }
    }

    /// Entry with multiple left forms, single right.
    pub fn with_left_synonyms(left: Vec<String>, right: &str) -> Self {
        Self {
            left,
            right: vec![right.to_string()],
        }
    }
}

/// A complete ground-truth mapping relationship.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Stable identifier, e.g. `"country->iso3"`.
    pub name: String,
    /// Descriptive left header (used by a minority of tables).
    pub left_label: String,
    /// Descriptive right header.
    pub right_label: String,
    /// Undescriptive generic headers most web tables use instead
    /// ("name", "code") — the reason name-based stitching over-groups.
    pub generic_left: String,
    /// Generic right header.
    pub generic_right: String,
    /// Category.
    pub kind: RelationKind,
    /// Whether the relation is one of the evaluation benchmark cases.
    pub benchmark: bool,
    /// Relative sampling weight in corpus generation (web popularity).
    pub popularity: f64,
    /// The complete entity list.
    pub entries: Vec<Entry>,
}

impl Relation {
    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the relation has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The benchmark ground truth `B*`: every (left form, right form)
    /// combination, normalized.
    pub fn ground_truth_pairs(&self) -> HashSet<(String, String)> {
        let mut out = HashSet::new();
        for e in &self.entries {
            for l in &e.left {
                for r in &e.right {
                    out.insert((normalize(l), normalize(r)));
                }
            }
        }
        out
    }

    /// Check internal consistency: after normalization, no left form
    /// maps to two different canonical rights (the relation must itself
    /// be a mapping). Returns conflicting left forms if any.
    pub fn fd_violations(&self) -> Vec<String> {
        use std::collections::HashMap;
        let mut seen: HashMap<String, usize> = HashMap::new();
        let mut bad = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            for l in &e.left {
                let key = normalize(l);
                if key.is_empty() {
                    continue;
                }
                match seen.get(&key) {
                    Some(&j) if j != i => bad.push(key.clone()),
                    _ => {
                        seen.insert(key, i);
                    }
                }
            }
        }
        bad
    }
}

/// The full registry of relations used for generation and evaluation.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// All relations, benchmark and otherwise.
    pub relations: Vec<Relation>,
}

impl Registry {
    /// Relations flagged as benchmark cases.
    pub fn benchmark_cases(&self) -> impl Iterator<Item = &Relation> {
        self.relations.iter().filter(|r| r.benchmark)
    }

    /// Find a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// Total number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl Registry {
    /// Build a partial external synonym feed (paper §4.1 "Synonyms",
    /// e.g. Bing's synonym assets \[10\]): each entity's synonym group is
    /// included with probability `fraction`. Real feeds are never
    /// complete, so the pipeline must work with partial coverage.
    pub fn partial_synonym_feed(&self, fraction: f64, seed: u64) -> mapsynth_text::SynonymDict {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dict = mapsynth_text::SynonymDict::new();
        for rel in &self.relations {
            for e in &rel.entries {
                if e.left.len() > 1 && rng.gen_bool(fraction) {
                    dict.declare_group(e.left.iter().map(String::as_str));
                }
                if e.right.len() > 1 && rng.gen_bool(fraction) {
                    dict.declare_group(e.right.iter().map(String::as_str));
                }
            }
        }
        dict
    }
}

/// Generate plausible name synonyms for a multi-word entity name:
/// comma inversion ("South Korea" → "Korea, South") and "the"-prefix
/// stripping. These survive normalization (word order differs), which
/// is what makes synonym coverage a real synthesis problem.
pub fn name_variants(name: &str) -> Vec<String> {
    let mut out = vec![name.to_string()];
    let words: Vec<&str> = name.split_whitespace().collect();
    if words.len() == 2 {
        out.push(format!("{}, {}", words[1], words[0]));
    }
    if words.len() >= 3 && words[0].eq_ignore_ascii_case("the") {
        out.push(words[1..].join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_cross_product() {
        let r = Relation {
            name: "t".into(),
            left_label: "L".into(),
            right_label: "R".into(),
            generic_left: "name".into(),
            generic_right: "code".into(),
            kind: RelationKind::Static,
            benchmark: true,
            popularity: 1.0,
            entries: vec![Entry {
                left: vec!["South Korea".into(), "Korea, South".into()],
                right: vec!["KOR".into()],
            }],
        };
        let gt = r.ground_truth_pairs();
        assert_eq!(gt.len(), 2);
        assert!(gt.contains(&("south korea".into(), "kor".into())));
        assert!(gt.contains(&("korea south".into(), "kor".into())));
    }

    #[test]
    fn fd_violation_detection() {
        let r = Relation {
            name: "t".into(),
            left_label: "L".into(),
            right_label: "R".into(),
            generic_left: "name".into(),
            generic_right: "code".into(),
            kind: RelationKind::Static,
            benchmark: false,
            popularity: 1.0,
            entries: vec![Entry::simple("A", "1"), Entry::simple("a", "2")],
        };
        assert_eq!(r.fd_violations(), vec!["a".to_string()]);
    }

    #[test]
    fn name_variants_two_words() {
        let v = name_variants("South Korea");
        assert!(v.contains(&"South Korea".to_string()));
        assert!(v.contains(&"Korea, South".to_string()));
    }
}
