//! The cell/table noise model.
//!
//! Web tables are dirty in specific, structured ways the pipeline must
//! survive (paper §3.1 quality issues, Figure 4 value errors):
//!
//! * typos — single-character edits;
//! * footnote marks — `\[1\]`, `*` appended to cells (Figure 2);
//! * case variation — ALL CAPS / lowercase renderings;
//! * wrong values — a cell replaced with another entity's right value
//!   (Figure 4's swapped chemical symbols);
//! * incoherent columns — mixed free-text cells that PMI filtering
//!   must remove (Table 7's "Location" column).

use rand::rngs::StdRng;
use rand::Rng;

/// Per-cell and per-table noise probabilities.
#[derive(Clone, Copy, Debug)]
pub struct NoiseConfig {
    /// Probability a cell gets a single-character typo.
    pub typo: f64,
    /// Probability a cell gets a footnote mark appended.
    pub footnote: f64,
    /// Probability a cell is re-cased (upper/lower).
    pub recase: f64,
    /// Probability a right-hand cell is replaced with a *wrong* value
    /// from the same relation (creates true conflicts).
    pub wrong_value: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            typo: 0.004,
            footnote: 0.012,
            recase: 0.05,
            wrong_value: 0.004,
        }
    }
}

impl NoiseConfig {
    /// A noiseless configuration (for tests and clean baselines).
    pub fn clean() -> Self {
        Self {
            typo: 0.0,
            footnote: 0.0,
            recase: 0.0,
            wrong_value: 0.0,
        }
    }
}

/// Apply cosmetic noise (typo / footnote / recase) to a cell value.
/// Wrong-value substitution is handled by the table generators because
/// it needs relation context.
pub fn corrupt_cell(rng: &mut StdRng, cfg: &NoiseConfig, value: &str) -> String {
    let mut v = value.to_string();
    if cfg.typo > 0.0 && rng.gen_bool(cfg.typo) && v.chars().count() >= 5 {
        v = apply_typo(rng, &v);
    }
    if cfg.recase > 0.0 && rng.gen_bool(cfg.recase) {
        v = if rng.gen_bool(0.5) {
            v.to_uppercase()
        } else {
            v.to_lowercase()
        };
    }
    if cfg.footnote > 0.0 && rng.gen_bool(cfg.footnote) {
        let mark = match rng.gen_range(0..3u8) {
            0 => format!("[{}]", rng.gen_range(1..9)),
            1 => "*".to_string(),
            _ => "[a]".to_string(),
        };
        v.push_str(&mark);
    }
    v
}

/// One random single-character edit: substitute, delete, insert or
/// transpose. Operates on char boundaries.
fn apply_typo(rng: &mut StdRng, v: &str) -> String {
    let chars: Vec<char> = v.chars().collect();
    let mut out = chars.clone();
    let i = rng.gen_range(0..chars.len());
    match rng.gen_range(0..4u8) {
        0 => out[i] = random_letter(rng), // substitute
        1 => {
            out.remove(i); // delete
        }
        2 => out.insert(i, random_letter(rng)), // insert
        _ => {
            if i + 1 < out.len() {
                out.swap(i, i + 1); // transpose
            } else {
                out[i] = random_letter(rng);
            }
        }
    }
    out.into_iter().collect()
}

fn random_letter(rng: &mut StdRng) -> char {
    (b'a' + rng.gen_range(0..26u8)) as char
}

/// Generate an incoherent "mixed content" cell for distractor columns
/// (addresses, timestamps, free text — Table 7's Location column).
pub fn incoherent_cell(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4u8) {
        0 => format!(
            "{} {} St, Suite {}",
            rng.gen_range(1..9999),
            ["Main", "Oak", "First", "Lake", "Hill"][rng.gen_range(0..5)],
            rng.gen_range(1..500)
        ),
        1 => format!(
            "{:02}-{:02} {:02}:{:02}",
            rng.gen_range(1..13),
            rng.gen_range(1..29),
            rng.gen_range(0..24),
            rng.gen_range(0..60)
        ),
        2 => format!("note {}", rng.gen::<u32>()),
        _ => format!("{:.2}%", rng.gen::<f64>() * 100.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clean_config_never_alters() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = NoiseConfig::clean();
        for _ in 0..100 {
            assert_eq!(corrupt_cell(&mut rng, &cfg, "South Korea"), "South Korea");
        }
    }

    #[test]
    fn typo_changes_string_but_stays_close() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let t = apply_typo(&mut rng, "california");
            assert_ne!(t, "");
            let d = mapsynth_text::edit_distance_full("california", &t);
            assert!(d <= 2, "typo moved too far: {t}");
        }
    }

    #[test]
    fn noisy_config_eventually_alters() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = NoiseConfig {
            typo: 0.5,
            footnote: 0.5,
            recase: 0.5,
            wrong_value: 0.0,
        };
        let altered = (0..100)
            .filter(|_| corrupt_cell(&mut rng, &cfg, "South Korea") != "South Korea")
            .count();
        assert!(altered > 50);
    }

    #[test]
    fn incoherent_cells_vary() {
        let mut rng = StdRng::seed_from_u64(4);
        let cells: std::collections::HashSet<String> =
            (0..50).map(|_| incoherent_cell(&mut rng)).collect();
        assert!(cells.len() > 40, "not enough variety: {}", cells.len());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        /// Cosmetic noise never erases a value, and with the default
        /// (low-probability) config the output stays within a small
        /// edit distance of the input — close enough for approximate
        /// matching to absorb (the design contract of the noise model).
        #[test]
        fn prop_corrupt_cell_stays_close(seed in 0u64..500, s in "[A-Za-z ]{5,24}") {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = corrupt_cell(&mut rng, &NoiseConfig::default(), &s);
            prop_assert!(!out.is_empty());
            let d = mapsynth_text::edit_distance_full(&s.to_lowercase(), &out.to_lowercase());
            prop_assert!(d <= 5, "drifted too far: {s:?} -> {out:?}");
        }
    }
}
