//! Enterprise spreadsheet corpus generator (paper §5.5).
//!
//! Enterprise-specific relations — cost centers, profit centers,
//! product families, data centers — that no public knowledge base
//! covers (the paper's point about KB coverage). Noise skews toward
//! spreadsheet pathologies: pivot-table mis-extraction that leaks
//! header strings into value columns, the issue §5.5 reports.

use crate::noise::{corrupt_cell, NoiseConfig};
use crate::registry::{Entry, Registry, Relation, RelationKind};
use crate::words::ENTERPRISE_TOKENS;
use mapsynth_corpus::{Column, Corpus};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Enterprise corpus parameters.
#[derive(Clone, Debug)]
pub struct EnterpriseConfig {
    /// Number of tables.
    pub tables: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of spreadsheet shares (provenance domains).
    pub shares: usize,
    /// Cell noise.
    pub noise: NoiseConfig,
    /// Number of relation families to synthesize.
    pub families: usize,
    /// Probability a table suffers pivot mis-extraction (header tokens
    /// leak into value rows).
    pub pivot_noise_prob: f64,
    /// Row range.
    pub min_rows: usize,
    /// Maximum rows.
    pub max_rows: usize,
    /// Probability a table is a master-data export covering the whole
    /// relation (canonical cost-center sheets exist in every company).
    pub master_prob: f64,
}

impl Default for EnterpriseConfig {
    fn default() -> Self {
        Self {
            tables: 2000,
            seed: 7,
            shares: 60,
            noise: NoiseConfig::default(),
            families: 40,
            pivot_noise_prob: 0.06,
            min_rows: 5,
            max_rows: 22,
            master_prob: 0.05,
        }
    }
}

/// Generated enterprise corpus + registry (30 benchmark cases).
pub struct EnterpriseCorpus {
    /// The corpus.
    pub corpus: Corpus,
    /// Ground-truth registry.
    pub registry: Registry,
    /// Per-table relation label.
    pub table_relation: Vec<Option<String>>,
}

/// Templates for enterprise relation families.
const TEMPLATES: &[(&str, &str, &str)] = &[
    // (family name, left label, right label)
    ("cost-center", "Cost Center", "Code"),
    ("profit-center", "Profit Center", "Code"),
    ("product-family", "Product Family", "Code"),
    ("data-center", "Data Center", "Region"),
    ("atu", "ATU", "Country"),
    ("industry", "Industry", "Vertical"),
    ("org", "Organization", "Org Code"),
    ("ledger-account", "Ledger Account", "Account Number"),
    ("building", "Building", "Campus"),
    ("sku", "SKU", "Product Line"),
];

const REGIONS: &[&str] = &["APAC", "EMEA", "AMER", "LATAM", "ANZ"];

/// Generate the enterprise corpus.
pub fn generate_enterprise(cfg: &EnterpriseConfig) -> EnterpriseCorpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut relations: Vec<Relation> = Vec::new();
    let mut used_names: HashSet<String> = HashSet::new();

    for fam in 0..cfg.families {
        let (family, left_label, right_label) = TEMPLATES[fam % TEMPLATES.len()];
        let n = rng.gen_range(30..=150);
        let mut entries = Vec::with_capacity(n);
        let mut used_codes = HashSet::new();
        let regional = right_label == "Region";
        for _ in 0..n {
            // Entity names like "Cloud Analytics 03".
            let name = loop {
                let a = ENTERPRISE_TOKENS[rng.gen_range(0..ENTERPRISE_TOKENS.len())];
                let b = ENTERPRISE_TOKENS[rng.gen_range(0..ENTERPRISE_TOKENS.len())];
                let candidate = format!("{a} {b} {:02}", rng.gen_range(0..100));
                if used_names.insert(candidate.clone()) {
                    break candidate;
                }
            };
            let code = if regional {
                REGIONS[rng.gen_range(0..REGIONS.len())].to_string()
            } else {
                loop {
                    let c = format!(
                        "{}{:04}",
                        (b'A' + rng.gen_range(0..26u8)) as char,
                        rng.gen_range(0..10_000)
                    );
                    if used_codes.insert(c.clone()) {
                        break c;
                    }
                }
            };
            entries.push(Entry::simple(&name, &code));
        }
        relations.push(Relation {
            name: format!("ent-{fam:02}-{family}"),
            left_label: left_label.to_string(),
            right_label: right_label.to_string(),
            generic_left: "name".to_string(),
            generic_right: "code".to_string(),
            kind: RelationKind::Static,
            // First 30 families are the paper's 30 best-effort cases.
            benchmark: fam < 30,
            popularity: 0.5 + rng.gen::<f64>() * 2.0,
            entries,
        });
    }

    let registry = Registry {
        relations: relations.clone(),
    };
    let mut corpus = Corpus::new();
    let share_ids: Vec<_> = (0..cfg.shares)
        .map(|i| corpus.domain(&format!("share-{i:03}")))
        .collect();
    let mut table_relation = Vec::new();

    let weights: Vec<f64> = relations.iter().map(|r| r.popularity).collect();
    let total_w: f64 = weights.iter().sum();

    for _ in 0..cfg.tables {
        let mut pick = rng.gen::<f64>() * total_w;
        let mut rel_idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                rel_idx = i;
                break;
            }
            pick -= w;
        }
        let rel = &relations[rel_idx];
        let share = share_ids[rng.gen_range(0..share_ids.len())];
        // Master exports are broad but stale: they cover 60-90% of the
        // live relation, so no single sheet matches the full ground
        // truth — stitching the master with fresh fragments does.
        let rows = if rng.gen_bool(cfg.master_prob) {
            (rel.len() as f64 * rng.gen_range(0.6..0.9)) as usize
        } else {
            rng.gen_range(cfg.min_rows..=cfg.max_rows).min(rel.len())
        };
        // Spreadsheets are head-biased like web tables: the popular
        // cost centers recur in most sheets, giving fragments the
        // overlap that lets synthesis chain them.
        let mut idxs: Vec<usize> = match rng.gen_range(0..10u8) {
            0..=3 => (0..rows).collect(),
            4..=6 => {
                let start = rng.gen_range(0..=(rel.len() - rows));
                (start..start + rows).collect()
            }
            _ => {
                let mut v: Vec<usize> = (0..rel.len()).collect();
                v.shuffle(&mut rng);
                v.truncate(rows);
                v
            }
        };
        idxs.sort_unstable();

        let mut left: Vec<String> = Vec::with_capacity(rows);
        let mut right: Vec<String> = Vec::with_capacity(rows);
        for &ei in &idxs {
            let e = &rel.entries[ei];
            left.push(corrupt_cell(&mut rng, &cfg.noise, &e.left[0]));
            right.push(corrupt_cell(&mut rng, &cfg.noise, &e.right[0]));
        }

        // Pivot mis-extraction: header tokens leak into the values.
        if rng.gen_bool(cfg.pivot_noise_prob) {
            let leak_at = rng.gen_range(0..left.len());
            left[leak_at] = rel.left_label.clone();
            right[leak_at] = rel.right_label.clone();
        }

        let cols = vec![
            (Some(rel.left_label.clone()), left),
            (Some(rel.right_label.clone()), right),
        ];
        let cols: Vec<Column> = cols
            .into_iter()
            .map(|(h, vals)| {
                let header = h.map(|h| corpus.interner.intern(&h));
                let values = vals.iter().map(|v| corpus.interner.intern(v)).collect();
                Column::new(header, values)
            })
            .collect();
        corpus.push_interned_table(share, cols);
        table_relation.push(Some(rel.name.clone()));
    }

    EnterpriseCorpus {
        corpus,
        registry,
        table_relation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EnterpriseConfig {
        EnterpriseConfig {
            tables: 150,
            families: 12,
            ..Default::default()
        }
    }

    #[test]
    fn builds_thirty_benchmark_cases_by_default() {
        let ec = generate_enterprise(&EnterpriseConfig {
            tables: 50,
            ..Default::default()
        });
        assert_eq!(ec.registry.benchmark_cases().count(), 30);
    }

    #[test]
    fn relations_are_mappings() {
        let ec = generate_enterprise(&small());
        for r in &ec.registry.relations {
            assert!(r.fd_violations().is_empty(), "{}", r.name);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_enterprise(&small());
        let b = generate_enterprise(&small());
        assert_eq!(a.corpus.len(), b.corpus.len());
        let ta = &a.corpus.tables[7];
        let tb = &b.corpus.tables[7];
        let va: Vec<&str> = ta.columns[0]
            .values
            .iter()
            .map(|&s| a.corpus.str_of(s))
            .collect();
        let vb: Vec<&str> = tb.columns[0]
            .values
            .iter()
            .map(|&s| b.corpus.str_of(s))
            .collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn pivot_noise_leaks_headers() {
        let ec = generate_enterprise(&EnterpriseConfig {
            tables: 300,
            pivot_noise_prob: 0.5,
            ..small()
        });
        // Some table must contain its own header label as a value.
        let mut found = false;
        for t in &ec.corpus.tables {
            let header = t.columns[0].header.unwrap();
            if t.columns[0].values.contains(&header) {
                found = true;
                break;
            }
        }
        assert!(found);
    }
}
