//! Procedurally generated relation families.
//!
//! The embedded real data provides ~30 relations; the paper's web
//! benchmark has 80 cases and its corpus has orders of magnitude more
//! relations than that. Procedural families fill the gap with
//! controllable structure:
//!
//! * *base families* — entity names built from word lists, mapped to
//!   synthetic codes (letter or numeric), with synonym variants;
//! * *sibling standards* — a second code assignment over the same left
//!   entities agreeing on a configurable fraction of entities, exactly
//!   the ISO-vs-IOC structure (paper Figure 2) that forces
//!   negative-evidence reasoning;
//! * *temporal families* — several "seasons" of the same relation with
//!   drifting right values (paper Figure 13: team → points).

use crate::registry::{name_variants, Entry, Relation, RelationKind};
use crate::words::{ADJECTIVES, NOUNS};
use rand::rngs::StdRng;

use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for procedural generation.
#[derive(Clone, Debug)]
pub struct ProceduralConfig {
    /// Number of base families.
    pub families: usize,
    /// Probability that a family also gets a sibling code standard.
    pub sibling_prob: f64,
    /// Fraction of entities on which a sibling standard agrees with the
    /// base standard (ISO vs IOC agree on most countries).
    pub sibling_agreement: f64,
    /// Entity count range per family.
    pub min_entities: usize,
    /// Maximum entities per family.
    pub max_entities: usize,
    /// Per-entity probability of an extra curated-style left synonym.
    pub synonym_prob: f64,
    /// Fraction of base families flagged as benchmark cases.
    pub benchmark_fraction: f64,
    /// Number of temporal families (each produces several seasons).
    pub temporal_families: usize,
    /// Seasons per temporal family.
    pub seasons: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProceduralConfig {
    fn default() -> Self {
        Self {
            families: 48,
            sibling_prob: 0.5,
            sibling_agreement: 0.72,
            min_entities: 15,
            max_entities: 120,
            synonym_prob: 0.35,
            benchmark_fraction: 0.9,
            temporal_families: 4,
            seasons: 3,
            seed: 17,
        }
    }
}

/// Kinds of synthetic right-hand codes.
#[derive(Clone, Copy)]
enum CodeStyle {
    /// Uppercase letters derived from the name plus a disambiguator.
    Letters(usize),
    /// Zero-padded numeric codes.
    Numeric(usize),
    /// Short category labels (many-to-one).
    Category,
}

/// Generate all procedural relations.
pub fn procedural_relations(cfg: &ProceduralConfig) -> Vec<Relation> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    let mut used_names: HashSet<String> = HashSet::new();

    for fam in 0..cfg.families {
        let n = rng.gen_range(cfg.min_entities..=cfg.max_entities);
        let domain_noun = NOUNS[rng.gen_range(0..NOUNS.len())];
        let style = match rng.gen_range(0..4u8) {
            0 => CodeStyle::Letters(3),
            1 => CodeStyle::Letters(4),
            2 => CodeStyle::Numeric(rng.gen_range(3..=5)),
            _ => CodeStyle::Category,
        };
        let entities = make_entities(&mut rng, n, &mut used_names, cfg.synonym_prob);
        let codes = make_codes(&mut rng, &entities, style);
        let benchmark = rng.gen_bool(cfg.benchmark_fraction);
        let popularity = 0.3 + rng.gen::<f64>() * 3.0;
        let base_name = format!("proc-{fam:02}-{domain_noun}->code");
        out.push(Relation {
            name: base_name.clone(),
            left_label: format!("{} name", title_case(domain_noun)),
            right_label: "Code".to_string(),
            generic_left: "name".to_string(),
            generic_right: "code".to_string(),
            kind: RelationKind::Static,
            benchmark,
            popularity,
            entries: entities
                .iter()
                .zip(&codes)
                .map(|(forms, code)| Entry::with_left_synonyms(forms.clone(), code))
                .collect(),
        });

        // Sibling standards over the same left entities — the paper's
        // parallel geocoding systems (a country has ISO, IOC, FIFA,
        // FIPS … codes). Agreement is jittered per standard: some pairs
        // differ on few entities (IOC vs FIFA), some on many (ISO vs
        // IOC). Sibling standards are benchmark cases too.
        if rng.gen_bool(cfg.sibling_prob) {
            let n_siblings = if rng.gen_bool(0.4) { 2 } else { 1 };
            for s in 0..n_siblings {
                let agreement =
                    (cfg.sibling_agreement + rng.gen_range(-0.12..0.18)).clamp(0.5, 0.95);
                let sibling_codes = make_sibling_codes(&mut rng, &codes, agreement, style);
                let suffix = if s == 0 { "alt-code" } else { "alt2-code" };
                out.push(Relation {
                    name: format!("proc-{fam:02}-{domain_noun}->{suffix}"),
                    left_label: format!("{} name", title_case(domain_noun)),
                    right_label: format!("Alt Code {}", s + 1),
                    generic_left: "name".to_string(),
                    generic_right: "code".to_string(),
                    kind: RelationKind::Static,
                    benchmark,
                    popularity: popularity * 0.6,
                    entries: entities
                        .iter()
                        .zip(&sibling_codes)
                        .map(|(forms, code)| Entry::with_left_synonyms(forms.clone(), code))
                        .collect(),
                });
            }
        }
    }

    // Temporal families: the same left entities with per-season values.
    for fam in 0..cfg.temporal_families {
        let n = rng.gen_range(12..=40);
        let entities = make_entities(&mut rng, n, &mut used_names, 0.0);
        for season in 0..cfg.seasons {
            let entries = entities
                .iter()
                .map(|forms| {
                    let points = rng.gen_range(0..100u32).to_string();
                    Entry::with_left_synonyms(forms.clone(), &points)
                })
                .collect();
            out.push(Relation {
                name: format!("temporal-{fam:02}-season-{season}"),
                left_label: "Team".to_string(),
                right_label: "Points".to_string(),
                generic_left: "team".to_string(),
                generic_right: "points".to_string(),
                kind: RelationKind::Temporal,
                benchmark: false,
                popularity: 0.8,
                entries,
            });
        }
    }

    out
}

fn title_case(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Build `n` unique entity names, each with its synonym forms.
fn make_entities(
    rng: &mut StdRng,
    n: usize,
    used: &mut HashSet<String>,
    synonym_prob: f64,
) -> Vec<Vec<String>> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let adj = ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())];
        let noun = NOUNS[rng.gen_range(0..NOUNS.len())];
        let name = format!("{} {}", title_case(adj), title_case(noun));
        if !used.insert(name.clone()) {
            continue;
        }
        let mut forms = name_variants(&name);
        if rng.gen_bool(synonym_prob) {
            forms.push(format!("The {name}"));
        }
        if rng.gen_bool(synonym_prob / 2.0) {
            forms.push(format!("{name} District"));
        }
        out.push(forms);
    }
    out
}

/// Assign unique codes to entities.
fn make_codes(rng: &mut StdRng, entities: &[Vec<String>], style: CodeStyle) -> Vec<String> {
    let mut used = HashSet::new();
    let mut out = Vec::with_capacity(entities.len());
    for forms in entities {
        let code = unique_code(rng, &forms[0], style, &mut used);
        out.push(code);
    }
    out
}

fn unique_code(
    rng: &mut StdRng,
    name: &str,
    style: CodeStyle,
    used: &mut HashSet<String>,
) -> String {
    const CATEGORIES: &[&str] = &["North", "South", "East", "West", "Central"];
    for attempt in 0..1000 {
        let candidate = match style {
            CodeStyle::Letters(len) => {
                // Derive from name letters first, randomize on collision.
                let letters: Vec<char> = name
                    .chars()
                    .filter(|c| c.is_ascii_alphabetic())
                    .map(|c| c.to_ascii_uppercase())
                    .collect();
                if attempt == 0 && letters.len() >= len {
                    letters[..len].iter().collect()
                } else {
                    (0..len)
                        .map(|_| (b'A' + rng.gen_range(0..26u8)) as char)
                        .collect()
                }
            }
            CodeStyle::Numeric(len) => {
                let max = 10usize.pow(len as u32);
                format!("{:0width$}", rng.gen_range(0..max), width = len)
            }
            CodeStyle::Category => {
                // Many-to-one is fine; no uniqueness needed.
                return CATEGORIES[rng.gen_range(0..CATEGORIES.len())].to_string();
            }
        };
        if used.insert(candidate.clone()) {
            return candidate;
        }
    }
    unreachable!("code space exhausted");
}

/// Sibling codes: equal to the base code with probability `agreement`,
/// otherwise a fresh unique code in the same style.
fn make_sibling_codes(
    rng: &mut StdRng,
    base: &[String],
    agreement: f64,
    style: CodeStyle,
) -> Vec<String> {
    let mut used: HashSet<String> = base.iter().cloned().collect();
    base.iter()
        .map(|code| {
            if rng.gen_bool(agreement) {
                code.clone()
            } else {
                match style {
                    CodeStyle::Category => {
                        // Re-draw a category; may coincide, that's fine.
                        let cats = ["North", "South", "East", "West", "Central"];
                        cats[rng.gen_range(0..cats.len())].to_string()
                    }
                    _ => unique_code(rng, "", style, &mut used),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = ProceduralConfig::default();
        let a = procedural_relations(&cfg);
        let b = procedural_relations(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.len(), y.len());
        }
    }

    #[test]
    fn all_relations_are_mappings() {
        let rels = procedural_relations(&ProceduralConfig::default());
        assert!(rels.len() >= 45);
        for r in &rels {
            assert!(r.fd_violations().is_empty(), "{}", r.name);
        }
    }

    #[test]
    fn siblings_share_lefts_and_conflict_on_some() {
        let rels = procedural_relations(&ProceduralConfig {
            families: 30,
            sibling_prob: 1.0,
            seed: 3,
            ..Default::default()
        });
        let base: Vec<&Relation> = rels.iter().filter(|r| r.name.ends_with("->code")).collect();
        let mut found_conflicting_pair = false;
        for b in &base {
            let alt_name = b.name.replace("->code", "->alt-code");
            if let Some(a) = rels.iter().find(|r| r.name == alt_name) {
                assert_eq!(a.len(), b.len());
                let disagreements = a
                    .entries
                    .iter()
                    .zip(&b.entries)
                    .filter(|(x, y)| x.right != y.right)
                    .count();
                if disagreements > 0 && disagreements < a.len() {
                    found_conflicting_pair = true;
                }
            }
        }
        assert!(found_conflicting_pair);
    }

    #[test]
    fn temporal_families_have_seasons() {
        let rels = procedural_relations(&ProceduralConfig::default());
        let temporal: Vec<&Relation> = rels
            .iter()
            .filter(|r| r.kind == RelationKind::Temporal)
            .collect();
        assert_eq!(temporal.len(), 4 * 3);
        assert!(temporal.iter().all(|r| !r.benchmark));
    }
}
