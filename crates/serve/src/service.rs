//! The atomic snapshot-swap handle: publish, rollback, versioning.
//!
//! [`MappingService`] is the long-lived object applications hold. It
//! owns the *current* [`IndexSnapshot`] behind an
//! `RwLock<Arc<IndexSnapshot>>`; readers take the read lock only long
//! enough to clone the `Arc` — never across a lookup — so a lookup
//! storm proceeds on a private handle while a background publisher
//! installs the next version under the write lock. Version ids are
//! assigned monotonically at publish time; a bounded history of
//! superseded snapshots supports [`rollback`](MappingService::rollback)
//! to the previously served version without a rebuild.
//!
//! ```text
//!  synthesis session ──► SnapshotBuilder ──► IndexSnapshot (v=N)
//!                                                  │ publish()
//!            readers ──► snapshot() ──► Arc ◄── RwLock<Arc<..>>
//!            (lock held only to clone)             │ rollback()
//!                                          history: [v=N-1, N-2, …]
//! ```

use crate::snapshot::{mapping_content_hash, IndexSnapshot};
use mapsynth::SynthesizedMapping;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Superseded snapshots retained for rollback.
pub const HISTORY_DEPTH: usize = 4;

// Lock poisoning recovery: every critical section in this module
// either performs a single atomic assignment (`Arc` swap / clone) or
// mutates the history `Vec` with operations that cannot leave it
// half-updated from the reader's point of view, so a thread that
// panicked while holding a lock cannot have left torn data behind.
// Recovering (instead of propagating the poison) is what lets readers
// keep serving the last good snapshot after a publisher thread dies —
// the graceful-degradation contract of the ingestion path.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

fn mutex_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What an incremental publish
/// ([`MappingService::publish_delta`]) did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaPublishStats {
    /// Mappings appended under fresh ids.
    pub added: usize,
    /// Mapping ids retired.
    pub removed: usize,
    /// Mappings kept verbatim (id, meta and shard entries untouched).
    pub unchanged: usize,
    /// Shards rebuilt for this version.
    pub rebuilt_shards: usize,
    /// Total shards (rebuilt + shared with the previous version).
    pub total_shards: usize,
}

/// A concurrent, versioned serving handle over mapping snapshots.
///
/// Cheap to share (`Arc<MappingService>`); all methods take `&self`.
pub struct MappingService {
    current: RwLock<Arc<IndexSnapshot>>,
    /// Most-recent-last stack of superseded snapshots.
    history: Mutex<Vec<Arc<IndexSnapshot>>>,
    /// Next version id to assign (published ids start at 1).
    next_version: AtomicU64,
}

impl Default for MappingService {
    fn default() -> Self {
        Self::new()
    }
}

impl MappingService {
    /// A service with an empty version-0 snapshot installed.
    pub fn new() -> Self {
        Self {
            current: RwLock::new(Arc::new(IndexSnapshot::empty())),
            history: Mutex::new(Vec::new()),
            next_version: AtomicU64::new(1),
        }
    }

    /// The currently served snapshot. The internal read lock is held
    /// only for the `Arc` clone — callers then run any number of
    /// lookups against the returned handle without blocking (or being
    /// blocked by) publishers. A handle stays fully valid even after
    /// its version is superseded.
    pub fn snapshot(&self) -> Arc<IndexSnapshot> {
        Arc::clone(&read_lock(&self.current))
    }

    /// Version id of the currently served snapshot.
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// Atomically install `snapshot` as the served version, stamping
    /// it with the next monotonically increasing version id (returned).
    /// The superseded snapshot is retained for [`rollback`](Self::rollback)
    /// (up to [`HISTORY_DEPTH`] deep); in-flight readers on old handles
    /// are unaffected.
    pub fn publish(&self, mut snapshot: IndexSnapshot) -> u64 {
        // Take the history lock before assigning the version and hold
        // it across the swap: concurrent publishers serialize on it,
        // so install order always matches version order and readers
        // never see the served version move backwards.
        let mut history = mutex_lock(&self.history);
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        snapshot.version = version;
        let next = Arc::new(snapshot);
        {
            let mut current = write_lock(&self.current);
            history.push(std::mem::replace(&mut *current, next));
        }
        if history.len() > HISTORY_DEPTH {
            history.remove(0);
        }
        version
    }

    /// Publish `mappings` as the next version **incrementally**: diff
    /// against the currently served snapshot by content (normalized
    /// pairs + provenance stats), retire mappings that disappeared,
    /// append the new ones, and rebuild only the shards their values
    /// hash into — untouched shards are shared with the current
    /// version instead of copying all pairs
    /// ([`IndexSnapshot::apply_delta`]).
    ///
    /// Serialized against concurrent publishers exactly like
    /// [`publish`](Self::publish): the diff, the delta build and the
    /// install happen under the same lock, so the base snapshot cannot
    /// be swapped out from under the delta. Readers still only ever
    /// observe complete snapshots with monotone versions.
    ///
    /// Mapping ids stay stable across delta publishes **until a
    /// compaction**: retired id slots accumulate, and once they would
    /// outnumber the live mappings the publish densely rebuilds
    /// (renumbering ids from 0) instead of patching, keeping a long
    /// churny publish stream O(live mappings) per publish.
    pub fn publish_delta(&self, mappings: &[SynthesizedMapping]) -> (u64, DeltaPublishStats) {
        let mut history = mutex_lock(&self.history);
        let base = Arc::clone(&read_lock(&self.current));

        // Content diff: unchanged mappings keep their ids (and their
        // shard entries); duplicates are matched by multiplicity.
        let mut by_hash: HashMap<u64, Vec<u32>> = HashMap::new();
        for (mi, h) in base.live_hashes() {
            by_hash.entry(h).or_default().push(mi);
        }
        let mut added: Vec<&SynthesizedMapping> = Vec::new();
        for m in mappings {
            match by_hash.get_mut(&mapping_content_hash(m)) {
                Some(ids) if !ids.is_empty() => {
                    ids.pop();
                }
                _ => added.push(m),
            }
        }
        let removed: Vec<u32> = {
            let mut r: Vec<u32> = by_hash.into_values().flatten().collect();
            r.sort_unstable();
            r
        };
        let stats = DeltaPublishStats {
            added: added.len(),
            removed: removed.len(),
            unchanged: mappings.len() - added.len(),
            total_shards: base.shard_count(),
            rebuilt_shards: 0,
        };

        // Retired id slots accumulate across delta publishes (ids are
        // stable, so every snapshot carries every id ever assigned).
        // Once the dead slots would outnumber the live mappings, a
        // dense rebuild is both smaller and cheaper than the delta —
        // compact instead of patching, so a long churny publish stream
        // stays O(live), not O(everything ever published).
        let live_after = base.mapping_count() - removed.len() + added.len();
        let retired_after = base.total_slots() - base.mapping_count() + removed.len();
        let compact = retired_after > live_after;
        let mut snapshot = if compact {
            let mut b = crate::snapshot::SnapshotBuilder::with_shards(base.shard_count());
            for m in mappings {
                b.add_synthesized(m);
            }
            b.build()
        } else {
            base.apply_delta(&added, &removed)
        };
        let stats = DeltaPublishStats {
            rebuilt_shards: if compact {
                base.shard_count()
            } else {
                snapshot.rebuilt_shards(&base)
            },
            ..stats
        };

        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        snapshot.version = version;
        let next = Arc::new(snapshot);
        {
            let mut current = write_lock(&self.current);
            history.push(std::mem::replace(&mut *current, next));
        }
        if history.len() > HISTORY_DEPTH {
            history.remove(0);
        }
        (version, stats)
    }

    /// Install a snapshot **recovered from disk**, keeping its
    /// archived version id instead of stamping a fresh one. The
    /// version counter is advanced past it (monotonically — a
    /// concurrent publish can only push it further), so every later
    /// publish gets a strictly larger id than anything the archive
    /// ever served. Returns the installed version.
    pub fn restore(&self, snapshot: IndexSnapshot) -> u64 {
        let mut history = mutex_lock(&self.history);
        let version = snapshot.version;
        self.next_version.fetch_max(version + 1, Ordering::Relaxed);
        let next = Arc::new(snapshot);
        {
            let mut current = write_lock(&self.current);
            history.push(std::mem::replace(&mut *current, next));
        }
        if history.len() > HISTORY_DEPTH {
            history.remove(0);
        }
        version
    }

    /// Re-install the previously served snapshot (keeping its original
    /// version id), dropping the current one. Returns the reinstated
    /// version, or `None` when no history remains.
    pub fn rollback(&self) -> Option<u64> {
        let mut history = mutex_lock(&self.history);
        let prev = history.pop()?;
        let version = prev.version();
        let mut current = write_lock(&self.current);
        *current = prev;
        Some(version)
    }

    /// Versions currently available to roll back to, oldest first.
    pub fn rollback_versions(&self) -> Vec<u64> {
        mutex_lock(&self.history)
            .iter()
            .map(|s| s.version())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotBuilder;

    fn one_pair_snapshot(left: &str, right: &str) -> IndexSnapshot {
        let mut b = SnapshotBuilder::with_shards(2);
        b.add_raw(None, &[(left.to_string(), right.to_string())]);
        b.build()
    }

    #[test]
    fn starts_empty_at_version_zero() {
        let svc = MappingService::new();
        assert_eq!(svc.version(), 0);
        assert!(svc.snapshot().is_empty());
        assert!(svc.rollback().is_none());
    }

    #[test]
    fn publish_assigns_monotonic_versions() {
        let svc = MappingService::new();
        assert_eq!(svc.publish(one_pair_snapshot("a", "1")), 1);
        assert_eq!(svc.publish(one_pair_snapshot("b", "2")), 2);
        assert_eq!(svc.version(), 2);
        assert_eq!(svc.snapshot().lookup("b").unwrap().forward(0), Some("2"));
    }

    #[test]
    fn old_handles_survive_publish() {
        let svc = MappingService::new();
        svc.publish(one_pair_snapshot("a", "1"));
        let old = svc.snapshot();
        svc.publish(one_pair_snapshot("b", "2"));
        // The superseded handle still answers from its own version.
        assert_eq!(old.version(), 1);
        assert_eq!(old.lookup("a").unwrap().forward(0), Some("1"));
        assert!(old.lookup("b").is_none());
    }

    #[test]
    fn rollback_restores_previous_version() {
        let svc = MappingService::new();
        svc.publish(one_pair_snapshot("a", "1"));
        svc.publish(one_pair_snapshot("b", "2"));
        assert_eq!(svc.rollback_versions(), vec![0, 1]);
        assert_eq!(svc.rollback(), Some(1));
        assert_eq!(svc.version(), 1);
        assert!(svc.snapshot().lookup("a").is_some());
        // A fresh publish after rollback still gets a higher id than
        // anything ever published.
        assert_eq!(svc.publish(one_pair_snapshot("c", "3")), 3);
    }

    #[test]
    fn restore_keeps_archived_version_and_advances_counter() {
        let svc = MappingService::new();
        let mut snap = one_pair_snapshot("a", "1");
        snap.version = 7;
        assert_eq!(svc.restore(snap), 7);
        assert_eq!(svc.version(), 7);
        assert_eq!(svc.snapshot().lookup("a").unwrap().forward(0), Some("1"));
        // Publishes after a restore are strictly newer than the
        // archived version.
        assert_eq!(svc.publish(one_pair_snapshot("b", "2")), 8);
    }

    #[test]
    fn history_is_bounded() {
        let svc = MappingService::new();
        for i in 0..10 {
            svc.publish(one_pair_snapshot(&format!("k{i}"), "v"));
        }
        assert_eq!(svc.rollback_versions().len(), HISTORY_DEPTH);
        assert_eq!(svc.rollback_versions(), vec![6, 7, 8, 9]);
    }
}
