//! # mapsynth-serve
//!
//! The concurrent, versioned **serving layer** over synthesized
//! mappings. The paper's pitch for pre-computing mappings (§1) is that
//! applications can then *look them up fast*; this crate is that
//! lookup path scaled past the build-once, single-threaded
//! `mapsynth-apps::MappingIndex`:
//!
//! * [`snapshot::IndexSnapshot`] — an immutable index over a set of
//!   mappings, **sharded by hash of the normalized lookup key** so a
//!   lookup touches exactly one shard's Bloom filter + hash map, with
//!   per-shard hit/miss counters and batch APIs
//!   ([`lookup_many`](snapshot::IndexSnapshot::lookup_many),
//!   [`translate_column`](snapshot::IndexSnapshot::translate_column))
//!   that amortize normalization and shard dispatch;
//! * [`service::MappingService`] — the atomic snapshot-swap handle:
//!   readers clone an `Arc` (no lock held across a lookup) while a
//!   background publisher installs new versions with monotonically
//!   increasing ids, and a bounded history supports rollback to the
//!   previously served version;
//! * [`store::MappingStore`] — the query trait the auto-correct /
//!   auto-fill / auto-join applications program against, implemented
//!   both here and by `mapsynth-apps`'s `MappingIndex`;
//! * [`bloom::BloomFilter`] — the containment prefilter (moved here
//!   from `mapsynth-apps`, which re-exports it).
//!
//! New synthesis sessions swap into the serving path without a
//! stop-the-world rebuild — in the spirit of answering queries under
//! updates (Berkholz et al.): build a snapshot off to the side, then
//! publish it in one atomic pointer swap.
//!
//! ```
//! use mapsynth_serve::{MappingService, SnapshotBuilder};
//!
//! let service = MappingService::new();
//! let mut builder = SnapshotBuilder::with_shards(4);
//! builder.add_raw(
//!     Some("state->abbr".into()),
//!     &[("California".into(), "CA".into()), ("Oregon".into(), "OR".into())],
//! );
//! let version = service.publish(builder.build());
//! assert_eq!(version, 1);
//!
//! // Readers hold a private snapshot handle; no lock across lookups.
//! let snap = service.snapshot();
//! let hit = snap.lookup("California").expect("served");
//! assert_eq!(hit.forward(0), Some("ca"));
//! ```

// Serving/ingestion code must degrade, not panic: every fallible path
// carries a typed error or a documented `expect` invariant. Unit tests
// (cfg(test)) are exempt; CI runs clippy on this lib with -D warnings,
// which makes this deny a hard gate.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod bloom;
pub mod ingest;
pub mod persist;
pub mod service;
pub mod snapshot;
pub mod store;

pub use bloom::BloomFilter;
pub use ingest::{
    DeltaIngestor, DeltaRequest, FaultInjector, IngestError, IngestOutcome, IngestStats,
    IngestorConfig, IngestorConfigError, NoFaults, PatchSpec, Quarantined, SpawnError, TableSpec,
};
pub use persist::{
    recover, PersistConfig, PersistError, Persistence, Recovered, ReplayReport, WalTail,
};
pub use service::{DeltaPublishStats, MappingService, HISTORY_DEPTH};
pub use snapshot::{
    ColumnTranslation, IndexSnapshot, MappingMeta, SnapshotBuilder, SnapshotStats, ValueHit,
    DEFAULT_SHARDS,
};
pub use store::MappingStore;
