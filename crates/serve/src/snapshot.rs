//! Immutable, sharded index snapshots.
//!
//! An [`IndexSnapshot`] is the unit the serving layer publishes: a
//! frozen view of a set of synthesized mappings, sharded by hash of
//! the normalized lookup key so that a lookup touches exactly one
//! shard's Bloom filter and hash map. Snapshots are immutable after
//! [`SnapshotBuilder::build`] — the only interior mutability is the
//! per-shard hit/miss counters, which makes a snapshot safe to share
//! across any number of reader threads without coordination.

use crate::bloom::BloomFilter;
use mapsynth::SynthesizedMapping;
use mapsynth_text::normalize;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default shard count (power of two so the hash can be masked).
pub const DEFAULT_SHARDS: usize = 16;

/// Per-mapping metadata carried by a snapshot.
#[derive(Clone, Debug, Default)]
pub struct MappingMeta {
    /// Optional human label.
    pub name: Option<String>,
    /// Number of distinct value pairs.
    pub pairs: usize,
    /// Distinct provenance domains (curation signal).
    pub domains: usize,
    /// Distinct source tables.
    pub source_tables: usize,
}

/// Everything the index knows about one normalized value.
#[derive(Clone, Debug, Default)]
struct Entry {
    /// Mapping ids containing the value (as left or right), ascending.
    postings: Vec<u32>,
    /// Mappings where the value is a **left**: `(mapping, right image)`
    /// (first winner per mapping; mappings are conflict-free after
    /// resolution, so this is total).
    forward: Vec<(u32, String)>,
    /// Mappings where the value is a **right**: `(mapping, lefts)`.
    reverse: Vec<(u32, Vec<String>)>,
}

/// One shard: a Bloom prefilter plus the exact entry map for the
/// values hashing into it. Shards sit behind an [`Arc`] so an
/// incremental publish ([`IndexSnapshot::apply_delta`]) can share
/// untouched shards between versions instead of copying all pairs —
/// the hit/miss counters of a shared shard therefore accumulate
/// across the versions sharing it.
struct Shard {
    bloom: BloomFilter,
    entries: HashMap<String, Entry>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A successful lookup: a borrowed view of one value's entry.
#[derive(Clone, Copy)]
pub struct ValueHit<'a> {
    entry: &'a Entry,
}

impl<'a> ValueHit<'a> {
    /// Mapping ids containing the value (left or right), ascending.
    pub fn mappings(&self) -> &'a [u32] {
        &self.entry.postings
    }

    /// The value's right image under `mapping`, if it is a left there.
    pub fn forward(&self, mapping: u32) -> Option<&'a str> {
        self.entry
            .forward
            .iter()
            .find(|(mi, _)| *mi == mapping)
            .map(|(_, r)| r.as_str())
    }

    /// The value's left preimages under `mapping`, if it is a right
    /// there.
    pub fn reverse(&self, mapping: u32) -> Option<&'a [String]> {
        self.entry
            .reverse
            .iter()
            .find(|(mi, _)| *mi == mapping)
            .map(|(_, ls)| ls.as_slice())
    }

    /// All `(mapping, right image)` translations of the value.
    pub fn translations(&self) -> impl Iterator<Item = (u32, &'a str)> + 'a {
        self.entry.forward.iter().map(|(mi, r)| (*mi, r.as_str()))
    }

    /// Whether the value is a left value of `mapping`.
    pub fn is_left(&self, mapping: u32) -> bool {
        self.entry.forward.iter().any(|(mi, _)| *mi == mapping)
    }

    /// Whether the value is a right value of `mapping`.
    pub fn is_right(&self, mapping: u32) -> bool {
        self.entry.reverse.iter().any(|(mi, _)| *mi == mapping)
    }
}

/// Snapshot-wide and per-shard serving statistics.
#[derive(Clone, Debug)]
pub struct SnapshotStats {
    /// The snapshot's version id.
    pub version: u64,
    /// Distinct indexed values.
    pub values: usize,
    /// Mappings served.
    pub mappings: usize,
    /// `(values, hits, misses)` per shard, in shard order.
    pub shards: Vec<(usize, u64, u64)>,
    /// Total lookup hits recorded against this snapshot version.
    pub hits: u64,
    /// Total lookup misses recorded against this snapshot version.
    pub misses: u64,
}

/// A whole-column translation through the best covering mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnTranslation {
    /// The mapping used.
    pub mapping: u32,
    /// Per-row right image, `None` where the mapping has no entry.
    pub translated: Vec<Option<String>>,
    /// Rows with a translation.
    pub covered: usize,
}

/// An immutable, sharded serving snapshot over synthesized mappings.
///
/// Built once by a [`SnapshotBuilder`], then shared read-only behind an
/// `Arc` by [`crate::service::MappingService`]. The lookup key is the
/// [normalized](fn@mapsynth_text::normalize) value string; its hash picks
/// one shard, whose Bloom filter rejects definitely-absent values
/// before the exact hash-map probe.
pub struct IndexSnapshot {
    pub(crate) version: u64,
    shards: Vec<Arc<Shard>>,
    shard_mask: usize,
    /// Per-mapping metadata, *including* retired mappings — mapping
    /// ids are stable across delta publishes, so retired slots stay.
    metas: Vec<MappingMeta>,
    /// Whether the mapping id is served by this snapshot.
    live: Vec<bool>,
    /// Content hash per mapping (normalized pairs + provenance stats),
    /// the identity [`crate::service::MappingService::publish_delta`]
    /// diffs on.
    hashes: Vec<u64>,
    /// Shards each mapping's values hash into (sorted) — the touch set
    /// of a removal.
    shards_of_mapping: Vec<Vec<u16>>,
    values: usize,
}

impl IndexSnapshot {
    /// An empty snapshot (what a fresh service serves before the first
    /// publish).
    pub fn empty() -> Self {
        SnapshotBuilder::new().build()
    }

    /// The version id stamped at publish time (0 = never published).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of mappings served (retired ids excluded).
    pub fn mapping_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Whether the snapshot serves no mappings.
    pub fn is_empty(&self) -> bool {
        !self.live.iter().any(|&l| l)
    }

    /// Whether `mapping` is served by this snapshot. Ids are stable
    /// across [`apply_delta`](Self::apply_delta) publishes, so a
    /// retired id stays addressable (its meta remains) but dead.
    pub fn is_live(&self, mapping: u32) -> bool {
        self.live.get(mapping as usize).copied().unwrap_or(false)
    }

    /// Number of distinct indexed values.
    pub fn value_count(&self) -> usize {
        self.values
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Metadata for one mapping.
    pub fn meta(&self, mapping: u32) -> &MappingMeta {
        &self.metas[mapping as usize]
    }

    /// All mapping metadata, id order.
    pub fn metas(&self) -> &[MappingMeta] {
        &self.metas
    }

    fn shard_of(&self, norm: &str) -> usize {
        (fnv1a(norm) as usize) & self.shard_mask
    }

    /// Look up an already-normalized value. Records a hit or miss on
    /// the value's shard.
    pub fn lookup_norm(&self, norm: &str) -> Option<ValueHit<'_>> {
        let shard = &self.shards[self.shard_of(norm)];
        // Bloom prefilter: definitely-absent values skip the hash map.
        let entry = if shard.bloom.may_contain(norm) {
            shard.entries.get(norm)
        } else {
            None
        };
        match entry {
            Some(entry) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(ValueHit { entry })
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Look up a raw value (normalized here).
    pub fn lookup(&self, raw: &str) -> Option<ValueHit<'_>> {
        self.lookup_norm(&normalize(raw))
    }

    /// Batch lookup of raw values: normalization is done once per
    /// value and probes are grouped by shard so each shard's Bloom
    /// filter and hash map stay hot across the batch. The result is
    /// aligned with the input.
    pub fn lookup_many(&self, raw: &[&str]) -> Vec<Option<ValueHit<'_>>> {
        let norms: Vec<String> = raw.iter().map(|v| normalize(v)).collect();
        self.lookup_many_norm(&norms)
    }

    /// Batch lookup of already-normalized values, grouped by shard.
    pub fn lookup_many_norm<S: AsRef<str>>(&self, norms: &[S]) -> Vec<Option<ValueHit<'_>>> {
        let mut out: Vec<Option<ValueHit<'_>>> = vec![None; norms.len()];
        // Bucket value indices by shard, then drain shard by shard.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for (i, n) in norms.iter().enumerate() {
            buckets[self.shard_of(n.as_ref())].push(i as u32);
        }
        for (si, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let shard = &self.shards[si];
            let probes = bucket.len() as u64;
            let mut hits = 0u64;
            for i in bucket {
                let norm = norms[i as usize].as_ref();
                if shard.bloom.may_contain(norm) {
                    if let Some(entry) = shard.entries.get(norm) {
                        out[i as usize] = Some(ValueHit { entry });
                        hits += 1;
                    }
                }
            }
            shard.hits.fetch_add(hits, Ordering::Relaxed);
            shard.misses.fetch_add(probes - hits, Ordering::Relaxed);
        }
        out
    }

    /// Translate a whole raw column through the single mapping with
    /// the best forward coverage. Returns `None` when no mapping
    /// translates any value.
    pub fn translate_column(&self, column: &[&str]) -> Option<ColumnTranslation> {
        let hits = self.lookup_many(column);
        let mut coverage: HashMap<u32, usize> = HashMap::new();
        for hit in hits.iter().flatten() {
            for (mi, _) in hit.translations() {
                *coverage.entry(mi).or_default() += 1;
            }
        }
        let (&best, _) = coverage
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))?;
        let translated: Vec<Option<String>> = hits
            .iter()
            .map(|h| h.and_then(|h| h.forward(best)).map(str::to_string))
            .collect();
        let covered = translated.iter().filter(|t| t.is_some()).count();
        Some(ColumnTranslation {
            mapping: best,
            translated,
            covered,
        })
    }

    /// Rank mappings by how many of `values` (raw) they contain,
    /// descending, ties by ascending id — the same contract as
    /// `mapsynth-apps`'s `MappingIndex::rank_by_containment`.
    pub fn rank_by_containment(&self, values: &[&str]) -> Vec<(u32, usize)> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for hit in self.lookup_many(values).iter().flatten() {
            for &mi in hit.mappings() {
                *counts.entry(mi).or_default() += 1;
            }
        }
        let mut ranked: Vec<(u32, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }

    /// Serving statistics accumulated against this snapshot version.
    pub fn stats(&self) -> SnapshotStats {
        let shards: Vec<(usize, u64, u64)> = self
            .shards
            .iter()
            .map(|s| {
                (
                    s.entries.len(),
                    s.hits.load(Ordering::Relaxed),
                    s.misses.load(Ordering::Relaxed),
                )
            })
            .collect();
        let hits = shards.iter().map(|s| s.1).sum();
        let misses = shards.iter().map(|s| s.2).sum();
        SnapshotStats {
            version: self.version,
            values: self.values,
            mappings: self.mapping_count(),
            shards,
            hits,
            misses,
        }
    }

    /// Number of this snapshot's shards not shared with `base`
    /// (i.e. rebuilt by the delta that derived it).
    pub fn rebuilt_shards(&self, base: &IndexSnapshot) -> usize {
        self.shards
            .iter()
            .zip(&base.shards)
            .filter(|(a, b)| !Arc::ptr_eq(a, b))
            .count()
    }

    /// Total mapping id slots, retired ones included (ids are never
    /// reused across delta publishes; compaction renumbers).
    pub(crate) fn total_slots(&self) -> usize {
        self.metas.len()
    }

    /// `(mapping id, content hash)` of every live mapping.
    pub(crate) fn live_hashes(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.hashes
            .iter()
            .enumerate()
            .filter(|&(mi, _)| self.live[mi])
            .map(|(mi, &h)| (mi as u32, h))
    }

    /// A new snapshot equal to this one with `removed` mapping ids
    /// retired and `added` mappings appended under fresh ids — the
    /// **incremental publish** primitive. Only shards touched by a
    /// removed or added mapping's values are rebuilt; every other
    /// shard is shared (`Arc`) with this snapshot, so the cost scales
    /// with the delta, not with the total pair count.
    ///
    /// Lookup-observable state is identical to a full
    /// [`SnapshotBuilder`] rebuild over the same live mappings (only
    /// mapping *ids* differ: a rebuild renumbers densely, a delta
    /// keeps ids stable).
    pub fn apply_delta(&self, added: &[&SynthesizedMapping], removed: &[u32]) -> IndexSnapshot {
        let removed: HashSet<u32> = removed.iter().copied().collect();
        for &mi in &removed {
            assert!(
                self.is_live(mi),
                "mapping {mi} is not live in this snapshot"
            );
        }

        // Ids, metas, hashes, liveness for the grown mapping set.
        let mut metas = self.metas.clone();
        let mut live = self.live.clone();
        let mut hashes = self.hashes.clone();
        let mut shards_of_mapping = self.shards_of_mapping.clone();
        for &mi in &removed {
            live[mi as usize] = false;
        }
        let added_ids: Vec<u32> = (0..added.len() as u32)
            .map(|k| self.metas.len() as u32 + k)
            .collect();
        for m in added {
            metas.push(MappingMeta {
                name: None,
                pairs: m.len(),
                domains: m.domains,
                source_tables: m.source_tables,
            });
            live.push(true);
            hashes.push(mapping_content_hash(m));
        }

        // The touch set: shards of removed mappings' values plus shards
        // of added mappings' values.
        let mut touched: HashSet<u16> = HashSet::new();
        for &mi in &removed {
            touched.extend(self.shards_of_mapping[mi as usize].iter().copied());
        }
        let mut added_shards: Vec<Vec<u16>> = Vec::with_capacity(added.len());
        for m in added {
            let mut of: Vec<u16> = m
                .pair_strs()
                .flat_map(|(l, r)| {
                    [
                        ((fnv1a(l) as usize) & self.shard_mask) as u16,
                        ((fnv1a(r) as usize) & self.shard_mask) as u16,
                    ]
                })
                .collect();
            of.sort_unstable();
            of.dedup();
            touched.extend(of.iter().copied());
            added_shards.push(of);
        }
        shards_of_mapping.extend(added_shards);

        // Rebuild touched shards; share the rest.
        let mut values = self.values;
        let shards: Vec<Arc<Shard>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(si, shard)| {
                if !touched.contains(&(si as u16)) {
                    return Arc::clone(shard);
                }
                let mut entries = shard.entries.clone();
                if !removed.is_empty() {
                    entries.retain(|_, e| {
                        e.postings.retain(|mi| !removed.contains(mi));
                        e.forward.retain(|(mi, _)| !removed.contains(mi));
                        e.reverse.retain(|(mi, _)| !removed.contains(mi));
                        !e.postings.is_empty()
                    });
                }
                for (m, &mi) in added.iter().zip(&added_ids) {
                    insert_mapping_pairs(&mut entries, mi, m.pair_strs(), |s| {
                        ((fnv1a(s) as usize) & self.shard_mask) == si
                    });
                }
                values = values - shard.entries.len() + entries.len();
                let mut bloom = BloomFilter::new(entries.len().max(1), 0.01);
                for v in entries.keys() {
                    bloom.insert(v);
                }
                Arc::new(Shard {
                    bloom,
                    entries,
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                })
            })
            .collect();

        IndexSnapshot {
            version: 0,
            shards,
            shard_mask: self.shard_mask,
            metas,
            live,
            hashes,
            shards_of_mapping,
            values,
        }
    }
}

impl IndexSnapshot {
    /// Serialize the snapshot for the archive's snapshot frame.
    /// Deterministic: per shard, entries are emitted in sorted key
    /// order, so equal snapshots encode to equal bytes regardless of
    /// hash-map iteration order. Hit/miss counters are serving-side
    /// ephemera and are not persisted.
    pub(crate) fn persist_encode(&self) -> Vec<u8> {
        use mapsynth_corpus::wire::{put_opt_str, put_str, put_u32, put_u64, put_u8};
        let mut buf = Vec::new();
        put_u64(&mut buf, self.version);
        put_u32(&mut buf, self.shards.len() as u32);
        put_u32(&mut buf, self.metas.len() as u32);
        for (i, meta) in self.metas.iter().enumerate() {
            put_opt_str(&mut buf, meta.name.as_deref());
            put_u64(&mut buf, meta.pairs as u64);
            put_u64(&mut buf, meta.domains as u64);
            put_u64(&mut buf, meta.source_tables as u64);
            put_u8(&mut buf, u8::from(self.live[i]));
            put_u64(&mut buf, self.hashes[i]);
            put_u32(&mut buf, self.shards_of_mapping[i].len() as u32);
            for &s in &self.shards_of_mapping[i] {
                put_u32(&mut buf, u32::from(s));
            }
        }
        for shard in &self.shards {
            let mut keys: Vec<&String> = shard.entries.keys().collect();
            keys.sort_unstable();
            put_u32(&mut buf, keys.len() as u32);
            for key in keys {
                let entry = &shard.entries[key];
                put_str(&mut buf, key);
                put_u32(&mut buf, entry.postings.len() as u32);
                for &mi in &entry.postings {
                    put_u32(&mut buf, mi);
                }
                put_u32(&mut buf, entry.forward.len() as u32);
                for (mi, r) in &entry.forward {
                    put_u32(&mut buf, *mi);
                    put_str(&mut buf, r);
                }
                put_u32(&mut buf, entry.reverse.len() as u32);
                for (mi, ls) in &entry.reverse {
                    put_u32(&mut buf, *mi);
                    put_u32(&mut buf, ls.len() as u32);
                    for l in ls {
                        put_str(&mut buf, l);
                    }
                }
            }
        }
        buf
    }

    /// Rebuild a snapshot from [`persist_encode`](Self::persist_encode)
    /// bytes. Bloom filters are reconstructed from the entry keys
    /// (their build is deterministic), hit/miss counters start at
    /// zero. Structural invariants (power-of-two shard count, aligned
    /// per-mapping vectors) are validated with typed errors.
    pub(crate) fn persist_decode(
        bytes: &[u8],
    ) -> Result<IndexSnapshot, mapsynth_corpus::wire::WireError> {
        use mapsynth_corpus::wire::{WireError, WireReader};
        let mut r = WireReader::new(bytes);
        let version = r.u64()?;
        let shard_count = r.u32()? as usize;
        if shard_count == 0 || !shard_count.is_power_of_two() {
            return Err(WireError::Invalid {
                what: "shard count must be a nonzero power of two",
            });
        }
        let slots = r.u32()? as usize;
        let mut metas = Vec::with_capacity(slots.min(1 << 16));
        let mut live = Vec::with_capacity(slots.min(1 << 16));
        let mut hashes = Vec::with_capacity(slots.min(1 << 16));
        let mut shards_of_mapping = Vec::with_capacity(slots.min(1 << 16));
        for _ in 0..slots {
            let name = r.opt_str()?;
            let pairs = r.u64()? as usize;
            let domains = r.u64()? as usize;
            let source_tables = r.u64()? as usize;
            let is_live = match r.u8()? {
                0 => false,
                1 => true,
                found => {
                    return Err(WireError::BadTag {
                        at: r.position() - 1,
                        found,
                    })
                }
            };
            let hash = r.u64()?;
            let n_shards = r.u32()? as usize;
            let mut of = Vec::with_capacity(n_shards.min(1 << 16));
            for _ in 0..n_shards {
                let s = r.u32()?;
                if s as usize >= shard_count {
                    return Err(WireError::Invalid {
                        what: "mapping touch set names a shard out of range",
                    });
                }
                of.push(s as u16);
            }
            metas.push(MappingMeta {
                name,
                pairs,
                domains,
                source_tables,
            });
            live.push(is_live);
            hashes.push(hash);
            shards_of_mapping.push(of);
        }
        let mut values = 0usize;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let n_entries = r.u32()? as usize;
            let mut entries: HashMap<String, Entry> =
                HashMap::with_capacity(n_entries.min(1 << 20));
            for _ in 0..n_entries {
                let key = r.str()?;
                let n_post = r.u32()? as usize;
                let mut postings = Vec::with_capacity(n_post.min(1 << 16));
                for _ in 0..n_post {
                    postings.push(r.u32()?);
                }
                let n_fwd = r.u32()? as usize;
                let mut forward = Vec::with_capacity(n_fwd.min(1 << 16));
                for _ in 0..n_fwd {
                    let mi = r.u32()?;
                    forward.push((mi, r.str()?));
                }
                let n_rev = r.u32()? as usize;
                let mut reverse = Vec::with_capacity(n_rev.min(1 << 16));
                for _ in 0..n_rev {
                    let mi = r.u32()?;
                    let n_ls = r.u32()? as usize;
                    let mut ls = Vec::with_capacity(n_ls.min(1 << 16));
                    for _ in 0..n_ls {
                        ls.push(r.str()?);
                    }
                    reverse.push((mi, ls));
                }
                entries.insert(
                    key,
                    Entry {
                        postings,
                        forward,
                        reverse,
                    },
                );
            }
            values += entries.len();
            let mut bloom = BloomFilter::new(entries.len().max(1), 0.01);
            for v in entries.keys() {
                bloom.insert(v);
            }
            shards.push(Arc::new(Shard {
                bloom,
                entries,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }));
        }
        r.finish()?;
        Ok(IndexSnapshot {
            version,
            shards,
            shard_mask: shard_count - 1,
            metas,
            live,
            hashes,
            shards_of_mapping,
            values,
        })
    }
}

/// Insert one mapping's (already-normalized) pairs into an entry map,
/// restricted to the values `owns` accepts. The insertion order per
/// mapping matches [`SnapshotBuilder::build`], so a delta-built shard
/// is structurally identical to a fresh full build over the same
/// mappings.
fn insert_mapping_pairs<'a>(
    entries: &mut HashMap<String, Entry>,
    mi: u32,
    pairs: impl Iterator<Item = (&'a str, &'a str)>,
    owns: impl Fn(&str) -> bool,
) {
    for (l, r) in pairs {
        if owns(l) {
            let le = entries.entry(l.to_string()).or_default();
            push_posting(&mut le.postings, mi);
            if le.forward.last().map(|(m, _)| *m) != Some(mi) {
                // first winner per (mapping, left)
                le.forward.push((mi, r.to_string()));
            }
        }
        if owns(r) {
            let re = entries.entry(r.to_string()).or_default();
            push_posting(&mut re.postings, mi);
            match re.reverse.last_mut() {
                Some((m, ls)) if *m == mi => ls.push(l.to_string()),
                _ => re.reverse.push((mi, vec![l.to_string()])),
            }
        }
    }
}

/// The content identity a delta publish diffs on: normalized pairs in
/// their sorted order plus the provenance stats the ranking uses.
/// **The single implementation** — the builder hashes its stored pair
/// lists and `publish_delta` hashes incoming `SynthesizedMapping`s
/// through this same function, so the two sides can never drift.
fn content_hash<'a>(
    pairs: impl Iterator<Item = (&'a str, &'a str)>,
    domains: usize,
    source_tables: usize,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (l, r) in pairs {
        eat(l.as_bytes());
        eat(&[0]);
        eat(r.as_bytes());
        eat(&[1]);
    }
    eat(&(domains as u64).to_le_bytes());
    eat(&(source_tables as u64).to_le_bytes());
    h
}

/// [`content_hash`] of a synthesized mapping (pairs come pre-sorted
/// from `pair_strs`, matching the order
/// [`SnapshotBuilder::add_synthesized`] stores).
pub(crate) fn mapping_content_hash(m: &SynthesizedMapping) -> u64 {
    content_hash(m.pair_strs(), m.domains, m.source_tables)
}

/// Builder accumulating mappings into an [`IndexSnapshot`].
pub struct SnapshotBuilder {
    shard_count: usize,
    mappings: Vec<(MappingMeta, Vec<(String, String)>)>,
}

impl Default for SnapshotBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotBuilder {
    /// Builder with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Builder with an explicit shard count (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shard_count: shards.max(1).next_power_of_two(),
            mappings: Vec::new(),
        }
    }

    /// Add a mapping from raw string pairs; values are normalized and
    /// empty-normalized pairs dropped.
    pub fn add_raw(&mut self, name: Option<String>, pairs: &[(String, String)]) -> &mut Self {
        let pairs: Vec<(String, String)> = pairs
            .iter()
            .map(|(l, r)| (normalize(l), normalize(r)))
            .filter(|(l, r)| !l.is_empty() && !r.is_empty())
            .collect();
        let meta = MappingMeta {
            name,
            pairs: pairs.len(),
            ..Default::default()
        };
        self.mappings.push((meta, pairs));
        self
    }

    /// Add one synthesized mapping: pairs are already normalized in
    /// the run's value space, so this is a straight copy-out with
    /// provenance metadata attached.
    pub fn add_synthesized(&mut self, m: &SynthesizedMapping) -> &mut Self {
        let pairs: Vec<(String, String)> = m
            .pair_strs()
            .map(|(l, r)| (l.to_string(), r.to_string()))
            .collect();
        let meta = MappingMeta {
            name: None,
            pairs: pairs.len(),
            domains: m.domains,
            source_tables: m.source_tables,
        };
        self.mappings.push((meta, pairs));
        self
    }

    /// Like [`add_synthesized`](Self::add_synthesized), with a label
    /// (e.g. the export filename) carried in the mapping's metadata.
    pub fn add_synthesized_named(
        &mut self,
        name: Option<String>,
        m: &SynthesizedMapping,
    ) -> &mut Self {
        self.add_synthesized(m);
        self.mappings.last_mut().expect("just pushed").0.name = name;
        self
    }

    /// Builder pre-loaded with a whole synthesis run's mappings.
    pub fn from_synthesized(mappings: &[SynthesizedMapping]) -> Self {
        let mut b = Self::new();
        for m in mappings {
            b.add_synthesized(m);
        }
        b
    }

    /// Freeze into a snapshot (version 0 until published through a
    /// [`crate::service::MappingService`]).
    pub fn build(self) -> IndexSnapshot {
        let shard_count = self.shard_count;
        let shard_mask = shard_count - 1;
        // Pass 1: per-shard entry maps.
        let mut entries: Vec<HashMap<String, Entry>> =
            (0..shard_count).map(|_| HashMap::new()).collect();
        let mut metas = Vec::with_capacity(self.mappings.len());
        let mut hashes = Vec::with_capacity(self.mappings.len());
        let mut shards_of_mapping = Vec::with_capacity(self.mappings.len());
        for (mi, (meta, pairs)) in self.mappings.into_iter().enumerate() {
            let mi = mi as u32;
            let mut of: Vec<u16> = Vec::new();
            for (l, r) in &pairs {
                let ls = (fnv1a(l) as usize) & shard_mask;
                let le = entries[ls].entry(l.clone()).or_default();
                push_posting(&mut le.postings, mi);
                if le.forward.last().map(|(m, _)| *m) != Some(mi) {
                    // first winner per (mapping, left)
                    le.forward.push((mi, r.clone()));
                }
                let rs = (fnv1a(r) as usize) & shard_mask;
                let re = entries[rs].entry(r.clone()).or_default();
                push_posting(&mut re.postings, mi);
                match re.reverse.last_mut() {
                    Some((m, ls)) if *m == mi => ls.push(l.clone()),
                    _ => re.reverse.push((mi, vec![l.clone()])),
                }
                of.push(ls as u16);
                of.push(rs as u16);
            }
            of.sort_unstable();
            of.dedup();
            shards_of_mapping.push(of);
            hashes.push(pairs_content_hash(&pairs, &meta));
            metas.push(meta);
        }
        // Pass 2: freeze shards, sizing each Bloom filter to its load.
        let mut values = 0;
        let shards: Vec<Arc<Shard>> = entries
            .into_iter()
            .map(|entries| {
                values += entries.len();
                let mut bloom = BloomFilter::new(entries.len().max(1), 0.01);
                for v in entries.keys() {
                    bloom.insert(v);
                }
                Arc::new(Shard {
                    bloom,
                    entries,
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                })
            })
            .collect();
        let live = vec![true; metas.len()];
        IndexSnapshot {
            version: 0,
            shards,
            shard_mask,
            metas,
            live,
            hashes,
            shards_of_mapping,
            values,
        }
    }
}

/// [`mapping_content_hash`] over a builder's stored (normalized) pair
/// list — identical to hashing the originating `SynthesizedMapping`
/// when the pairs came through
/// [`SnapshotBuilder::add_synthesized`] (whose pair order is the
/// mapping's sorted `pair_strs` order).
fn pairs_content_hash(pairs: &[(String, String)], meta: &MappingMeta) -> u64 {
    content_hash(
        pairs.iter().map(|(l, r)| (l.as_str(), r.as_str())),
        meta.domains,
        meta.source_tables,
    )
}

/// Append `mi` to an ascending posting list iff not already last.
fn push_posting(postings: &mut Vec<u32>, mi: u32) {
    if postings.last() != Some(&mi) {
        postings.push(mi);
    }
}

/// FNV-1a — the shard router. Deterministic across processes (unlike
/// `DefaultHasher`'s unspecified keys) so shard layout is stable.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> IndexSnapshot {
        let mut b = SnapshotBuilder::with_shards(4);
        b.add_raw(
            Some("state->abbr".into()),
            &[
                ("California".into(), "CA".into()),
                ("Washington".into(), "WA".into()),
                ("Oregon".into(), "OR".into()),
            ],
        );
        b.add_raw(
            Some("country->code".into()),
            &[
                ("United States".into(), "USA".into()),
                ("Canada".into(), "CAN".into()),
            ],
        );
        b.build()
    }

    #[test]
    fn lookup_forward_and_reverse() {
        let s = snapshot();
        let hit = s.lookup("California").expect("indexed");
        assert_eq!(hit.mappings(), &[0]);
        assert_eq!(hit.forward(0), Some("ca"));
        assert!(hit.is_left(0) && !hit.is_right(0));
        let hit = s.lookup("CA").expect("indexed");
        assert_eq!(hit.reverse(0), Some(&["california".to_string()][..]));
        assert!(s.lookup("nonsense").is_none());
    }

    #[test]
    fn batch_lookup_aligns_with_input() {
        let s = snapshot();
        let hits = s.lookup_many(&["Canada", "nope", "Oregon"]);
        assert!(hits[0].is_some());
        assert!(hits[1].is_none());
        assert_eq!(hits[2].unwrap().forward(0), Some("or"));
    }

    #[test]
    fn translate_column_picks_best_mapping() {
        let s = snapshot();
        let t = s
            .translate_column(&["California", "Washington", "Canada"])
            .expect("translation found");
        assert_eq!(t.mapping, 0);
        assert_eq!(t.covered, 2);
        assert_eq!(
            t.translated,
            vec![Some("ca".into()), Some("wa".into()), None]
        );
    }

    #[test]
    fn containment_ranking_matches_index_contract() {
        let s = snapshot();
        let ranked = s.rank_by_containment(&["California", "WA", "USA"]);
        assert_eq!(ranked, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let s = snapshot();
        s.lookup("California");
        s.lookup("absent-1");
        s.lookup("absent-2");
        let st = s.stats();
        assert_eq!(st.values, 10);
        assert_eq!(st.mappings, 2);
        assert_eq!((st.hits, st.misses), (1, 2));
        assert_eq!(st.shards.len(), 4);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let mut b = SnapshotBuilder::with_shards(5);
        b.add_raw(None, &[("a".into(), "b".into())]);
        let s = b.build();
        assert_eq!(s.shard_count(), 8);
    }

    #[test]
    fn empty_snapshot_serves_nothing() {
        let s = IndexSnapshot::empty();
        assert!(s.is_empty());
        assert!(s.lookup("anything").is_none());
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn persist_round_trip_is_lookup_identical_and_deterministic() {
        let s = snapshot();
        let bytes = s.persist_encode();
        assert_eq!(bytes, s.persist_encode(), "encoding must be deterministic");
        let d = IndexSnapshot::persist_decode(&bytes).expect("decodes");
        assert_eq!(d.version(), s.version());
        assert_eq!(d.shard_count(), s.shard_count());
        assert_eq!(d.value_count(), s.value_count());
        assert_eq!(d.mapping_count(), s.mapping_count());
        for probe in ["California", "CA", "United States", "USA", "nonsense"] {
            match (s.lookup(probe), d.lookup(probe)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.mappings(), b.mappings(), "postings for {probe}");
                    for &mi in a.mappings() {
                        assert_eq!(a.forward(mi), b.forward(mi));
                        assert_eq!(a.reverse(mi), b.reverse(mi));
                    }
                }
                _ => panic!("presence of {probe} diverged"),
            }
        }
        // Content hashes (the publish_delta identity) survive.
        let live_a: Vec<_> = s.live_hashes().collect();
        let live_b: Vec<_> = d.live_hashes().collect();
        assert_eq!(live_a, live_b);
        // Re-encoding the decoded snapshot is byte-identical.
        assert_eq!(d.persist_encode(), bytes);
    }

    #[test]
    fn persist_decode_is_total_on_prefixes() {
        let bytes = snapshot().persist_encode();
        for cut in 0..bytes.len() {
            assert!(
                IndexSnapshot::persist_decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Structural validation: a non-power-of-two shard count is
        // refused even if the bytes parse.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&3u32.to_le_bytes());
        assert!(IndexSnapshot::persist_decode(&bad).is_err());
    }
}
