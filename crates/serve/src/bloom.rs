//! A simple Bloom filter over strings.
//!
//! Used by [`crate::snapshot::IndexSnapshot`] (and re-exported for
//! `mapsynth-apps`'s `MappingIndex`) as the containment prefilter
//! the paper sketches in §1 ("hash-based techniques (e.g., bloom
//! filters) for efficient lookup based on value containment"). Double
//! hashing (Kirsch–Mitzenmacher) derives k probe positions from two
//! base hashes.

/// Bloom filter sized for a target false-positive rate.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    k: u32,
}

impl BloomFilter {
    /// Create a filter for `expected_items` at roughly `fp_rate`
    /// (clamped to sane bounds).
    pub fn new(expected_items: usize, fp_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = fp_rate.clamp(1e-6, 0.5);
        let m = (-(n * p.ln()) / (2f64.ln().powi(2))).ceil().max(64.0) as u64;
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 16.0) as u32;
        Self {
            bits: vec![0u64; m.div_ceil(64) as usize],
            n_bits: m,
            k,
        }
    }

    fn hashes(&self, item: &str) -> (u64, u64) {
        // FNV-1a and a splitmix-scrambled variant as the two bases.
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
        for b in item.as_bytes() {
            h1 ^= u64::from(*b);
            h1 = h1.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut h2 = h1 ^ 0x9e37_79b9_7f4a_7c15;
        h2 = (h2 ^ (h2 >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h2 = (h2 ^ (h2 >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h2 ^= h2 >> 31;
        (h1, h2 | 1) // odd step avoids degenerate cycles
    }

    /// Insert an item.
    pub fn insert(&mut self, item: &str) {
        let (h1, h2) = self.hashes(item);
        for i in 0..self.k {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Membership test: false means definitely absent; true means
    /// probably present.
    pub fn may_contain(&self, item: &str) -> bool {
        let (h1, h2) = self.hashes(item);
        (0..self.k).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.n_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Size of the bit array in bits.
    pub fn n_bits(&self) -> u64 {
        self.n_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::new(100, 0.01);
        let items: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        for it in &items {
            b.insert(it);
        }
        for it in &items {
            assert!(b.may_contain(it));
        }
    }

    #[test]
    fn false_positive_rate_in_range() {
        let mut b = BloomFilter::new(1000, 0.01);
        for i in 0..1000 {
            b.insert(&format!("present-{i}"));
        }
        let fp = (0..10_000)
            .filter(|i| b.may_contain(&format!("absent-{i}")))
            .count();
        // 1% target; allow generous slack.
        assert!(fp < 500, "false positives: {fp}/10000");
    }

    #[test]
    fn empty_filter_rejects() {
        let b = BloomFilter::new(10, 0.01);
        assert!(!b.may_contain("anything"));
    }

    proptest! {
        #[test]
        fn prop_inserted_always_found(items in proptest::collection::vec("[a-z]{1,12}", 1..50)) {
            let mut b = BloomFilter::new(items.len(), 0.01);
            for it in &items {
                b.insert(it);
            }
            for it in &items {
                prop_assert!(b.may_contain(it));
            }
        }
    }
}
