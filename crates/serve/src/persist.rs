//! Crash-safe persistence: checksummed snapshot archives + a delta
//! WAL, with typed recovery.
//!
//! Everything the serving layer holds dies with the process; this
//! module is the durability story beneath it (ROADMAP's cross-process
//! serving milestone). The design is the classic base-plus-log pair,
//! in the spirit of answering queries under an update stream:
//!
//! * a **snapshot archive** ([`Persistence::write_archive`]) captures
//!   a consistent cut — the served [`IndexSnapshot`], the live corpus
//!   in portable form, and the sequence number of the last accepted
//!   delta it covers — written to a temp file, fsynced, then
//!   atomically renamed into place (and the directory fsynced), so an
//!   archive is either entirely present or entirely absent;
//! * a **delta WAL** appends every accepted delta as a
//!   [`PortableDelta`] record (append + fsync *per record*, before
//!   the delta can reach a publish), rotating to a new sealed segment
//!   at a size threshold;
//! * [`recover`] loads the newest *valid* archive — falling back to
//!   older generations when the newest is corrupt — rebuilds the
//!   session by re-preparing on the archived corpus, replays the WAL
//!   tail through the **same** apply path the live ingestor uses
//!   ([`crate::ingest`]'s shared apply), and truncates a torn final
//!   record instead of failing. Every other corruption is a typed
//!   [`PersistError`] — never a panic, never silently wrong data.
//!
//! File formats ride on `mapsynth_corpus`'s checksummed framing
//! ([`FrameWriter`]/[`FrameReader`]): a versioned magic header binds
//! each file to a `kind`, every frame carries a CRC32, sealed files
//! end in a counted trailer. Archives are always sealed; the active
//! WAL segment is deliberately *never* sealed (not even on graceful
//! shutdown), so the disk state after a clean stop is byte-identical
//! to the state after a kill at the same point — the property the
//! recovery oracle leans on. A consequence: each recover→resume cycle
//! leaves the pre-crash segment behind unsealed while the resumed WAL
//! opens a fresh one, so a directory may legitimately hold *several*
//! unsealed segments. Replay accepts an unsealed non-final segment
//! whenever the next segment starts at or before the sequence replay
//! expects next (contiguity — no record can be missing between them);
//! only a provable hole halts it.

use crate::ingest::{
    apply_request_to, compact_with_keys, DeltaRequest, IngestError, PatchSpec, TableSpec,
};
use crate::service::MappingService;
use crate::snapshot::IndexSnapshot;
use mapsynth::delta::{PortableDelta, PortablePatch, PortableTable};
use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth_corpus::wire::{self, WireError, WireReader};
use mapsynth_corpus::{
    read_sealed, Corpus, FrameError, FrameReader, FrameTail, FrameWriter, TableId,
};
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Frame-file kind tag of snapshot archives (`"MSA1"`).
const ARCHIVE_KIND: u32 = u32::from_le_bytes(*b"MSA1");
/// Frame-file kind tag of WAL segments (`"MSW1"`).
const WAL_KIND: u32 = u32::from_le_bytes(*b"MSW1");
/// Byte length of a framed file's header: a segment at exactly this
/// length holds no records at all.
const WAL_HEADER_LEN: u64 = 16;

/// Why persistence or recovery failed. Every failure mode the fault
/// matrix exercises maps to exactly one variant.
#[derive(Debug)]
pub enum PersistError {
    /// A filesystem operation failed.
    Io(io::Error),
    /// A framed file failed its integrity checks.
    Frame {
        /// File name (not full path) the error was found in.
        file: String,
        /// The typed framing failure.
        error: FrameError,
    },
    /// A frame's payload passed its CRC but did not decode — a format
    /// bug or a CRC collision, distinguished from bit rot.
    Decode {
        /// File name the record came from.
        file: String,
        /// The typed decode failure.
        error: WireError,
    },
    /// A file's content is well-formed but structurally wrong (frame
    /// count, out-of-range references).
    Layout {
        /// File name.
        file: String,
        /// What was wrong.
        what: &'static str,
    },
    /// The directory holds no archive generation at all.
    NoArchive,
    /// Every archive generation present failed to load.
    AllArchivesCorrupt {
        /// Generations tried (newest first, all failed).
        tried: usize,
    },
    /// The WAL's record sequence has a hole the retained archives
    /// cannot explain — replaying past it would silently skip
    /// accepted deltas.
    WalGap {
        /// The sequence number replay expected next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// A WAL record that was accepted by the original stream was
    /// rejected on replay — the store is inconsistent with itself.
    Replay {
        /// The record's sequence number.
        seq: u64,
        /// The apply path's rejection.
        error: IngestError,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Frame { file, error } => write!(f, "{file}: {error}"),
            PersistError::Decode { file, error } => write!(f, "{file}: record decode: {error}"),
            PersistError::Layout { file, what } => write!(f, "{file}: {what}"),
            PersistError::NoArchive => write!(f, "no archive generation found"),
            PersistError::AllArchivesCorrupt { tried } => {
                write!(f, "all {tried} archive generations failed to load")
            }
            PersistError::WalGap { expected, found } => {
                write!(f, "WAL gap: expected record {expected}, found {found}")
            }
            PersistError::Replay { seq, error } => {
                write!(f, "WAL record {seq} rejected on replay: {error}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Frame { error, .. } => Some(error),
            PersistError::Decode { error, .. } => Some(error),
            PersistError::Replay { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

fn frame_err(path: &Path, error: FrameError) -> PersistError {
    PersistError::Frame {
        file: file_name(path),
        error,
    }
}

fn decode_err(path: &Path, error: WireError) -> PersistError {
    PersistError::Decode {
        file: file_name(path),
        error,
    }
}

/// Durability barrier on the directory itself: the rename that
/// publishes an archive is only crash-safe once the directory entry
/// is on disk.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn archive_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("archive-{generation:08}.msa"))
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:010}.mswal"))
}

/// Scan `dir` for archive generations, ascending.
fn generations(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    scan(dir, "archive-", ".msa")
}

/// Scan `dir` for WAL segments by first contained sequence, ascending.
fn segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    scan(dir, "wal-", ".mswal")
}

fn scan(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(prefix)
            .and_then(|s| s.strip_suffix(suffix))
        else {
            continue;
        };
        if let Ok(n) = stem.parse::<u64>() {
            out.push((n, entry.path()));
        }
    }
    out.sort_by_key(|&(n, _)| n);
    Ok(out)
}

/// One loaded archive generation.
struct LoadedArchive {
    generation: u64,
    /// Last accepted-delta sequence the archive captures; WAL records
    /// with `seq <= covered_seq` are redundant against it.
    covered_seq: u64,
    snapshot: IndexSnapshot,
    tables: Vec<PortableTable>,
}

/// Archive file body: exactly three sealed frames.
const ARCHIVE_FRAMES: usize = 3;

fn load_archive(path: &Path) -> Result<LoadedArchive, PersistError> {
    let frames = read_sealed(path, ARCHIVE_KIND).map_err(|e| frame_err(path, e))?;
    if frames.len() != ARCHIVE_FRAMES {
        return Err(PersistError::Layout {
            file: file_name(path),
            what: "archive must hold exactly 3 frames (meta, corpus, snapshot)",
        });
    }
    // Frame 0: meta.
    let mut r = WireReader::new(&frames[0]);
    let meta = (|| -> Result<(u64, u64), WireError> {
        let generation = r.u64()?;
        let covered_seq = r.u64()?;
        let _snapshot_version = r.u64()?;
        r.finish()?;
        Ok((generation, covered_seq))
    })()
    .map_err(|e| decode_err(path, e))?;
    // Frame 1: portable live tables.
    let mut r = WireReader::new(&frames[1]);
    let tables = (|| -> Result<Vec<PortableTable>, WireError> {
        let n = r.u32()? as usize;
        let mut tables = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            tables.push(PortableTable::decode_from(&mut r)?);
        }
        r.finish()?;
        Ok(tables)
    })()
    .map_err(|e| decode_err(path, e))?;
    // Frame 2: the served snapshot.
    let snapshot = IndexSnapshot::persist_decode(&frames[2]).map_err(|e| decode_err(path, e))?;
    Ok(LoadedArchive {
        generation: meta.0,
        covered_seq: meta.1,
        snapshot,
        tables,
    })
}

/// The live tables of `corpus` in portable (content + stable key)
/// form, in live-table order: exactly what a fresh `prepare` on the
/// recovered side needs to reconstruct an observation-identical
/// session. `key_of_table` must cover the live tables 1:1 (the
/// ingestor's invariant).
pub(crate) fn portable_tables(
    corpus: &Corpus,
    key_of_table: &HashMap<u64, TableId>,
) -> Vec<PortableTable> {
    let mut entries: Vec<(u64, TableId)> = key_of_table.iter().map(|(&k, &t)| (k, t)).collect();
    entries.sort_by_key(|&(_, tid)| tid.0);
    entries
        .into_iter()
        .map(|(key, tid)| {
            let table = corpus.table(tid);
            PortableTable {
                key,
                domain: corpus.domain_names[table.domain.0 as usize].clone(),
                columns: table
                    .columns
                    .iter()
                    .map(|c| {
                        (
                            c.header.map(|h| corpus.str_of(h).to_string()),
                            c.values
                                .iter()
                                .map(|&v| corpus.str_of(v).to_string())
                                .collect(),
                        )
                    })
                    .collect(),
            }
        })
        .collect()
}

fn request_to_portable(r: &DeltaRequest) -> PortableDelta {
    PortableDelta {
        add: r
            .add
            .iter()
            .map(|t| PortableTable {
                key: t.key,
                domain: t.domain.clone(),
                columns: t.columns.clone(),
            })
            .collect(),
        remove: r.remove.clone(),
        patches: r
            .patches
            .iter()
            .map(|p| PortablePatch {
                key: p.key,
                deleted: p.deleted.clone(),
                inserted: p.inserted.clone(),
            })
            .collect(),
    }
}

fn portable_to_request(p: PortableDelta) -> DeltaRequest {
    DeltaRequest {
        add: p
            .add
            .into_iter()
            .map(|t| TableSpec {
                key: t.key,
                domain: t.domain,
                columns: t.columns,
            })
            .collect(),
        remove: p.remove,
        patches: p
            .patches
            .into_iter()
            .map(|p| PatchSpec {
                key: p.key,
                deleted: p.deleted,
                inserted: p.inserted,
            })
            .collect(),
    }
}

/// Tuning for the persistence hook.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Directory holding archives and WAL segments (created if
    /// absent).
    pub dir: PathBuf,
    /// Rotate (and seal) the active WAL segment once it reaches this
    /// many bytes.
    pub segment_bytes: u64,
    /// Write a fresh archive generation every this many successful
    /// publishes (1 = archive on every publish).
    pub archive_every_publishes: u64,
    /// Archive generations retained after a new one lands (≥ 1; the
    /// matrix's fallback-to-older-generation cells need ≥ 2).
    pub keep_generations: usize,
}

impl PersistConfig {
    /// Defaults tuned for a delta stream of small tables: 64 KiB
    /// segments, an archive every 4 publishes, 2 generations kept.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 64 * 1024,
            archive_every_publishes: 4,
            keep_generations: 2,
        }
    }
}

/// The active WAL: an open (unsealed) segment plus rotation state.
struct DeltaWal {
    dir: PathBuf,
    segment_bytes: u64,
    /// The open segment, if any: writer + its path (for repair and
    /// error reporting).
    active: Option<(FrameWriter, PathBuf)>,
    /// Sequence number the next record will carry.
    next_seq: u64,
    /// Set when a failed append (or seal) could not be repaired: the
    /// active segment may hold a torn frame, and appending more
    /// records behind it would make the whole tail unreplayable.
    /// Every further append fails fast instead.
    poisoned: bool,
}

impl DeltaWal {
    /// Append one accepted delta as record `next_seq` and fsync it;
    /// rotates (sealing the old segment) once the active segment
    /// crosses the size threshold.
    ///
    /// A failed append never leaves a torn frame behind: the segment
    /// is truncated back to its last durable whole-frame boundary (or
    /// deleted outright if no frame ever landed) and the next append
    /// opens a fresh segment, so one transient i/o error costs exactly
    /// one record, not the replayability of the remaining tail. Only
    /// when that repair *itself* fails is the WAL poisoned (every
    /// further append errors).
    fn append(&mut self, delta: &PortableDelta) -> Result<u64, PersistError> {
        if self.poisoned {
            return Err(PersistError::Layout {
                file: file_name(&self.dir),
                what: "WAL disabled: a torn append could not be repaired",
            });
        }
        let seq = self.next_seq;
        if self.active.is_none() {
            let path = segment_path(&self.dir, seq);
            if path.exists() {
                // Orphaned records from a recovery that halted on
                // corruption — overwriting them would silently destroy
                // fsync-acknowledged data.
                return Err(PersistError::Layout {
                    file: file_name(&path),
                    what: "refusing to overwrite an existing WAL segment",
                });
            }
            let w = FrameWriter::create(&path, WAL_KIND).map_err(|e| frame_err(&path, e))?;
            // The segment file itself must be findable after a crash.
            sync_dir(&self.dir)?;
            self.active = Some((w, path));
        }
        let mut record = Vec::new();
        wire::put_u64(&mut record, seq);
        record.extend_from_slice(&delta.encode());
        let (durable_len, io) = {
            let (w, _) = self.active.as_mut().expect("just ensured active segment");
            let durable_len = w.len();
            let io = w.write_frame(&record).and_then(|()| w.sync());
            (durable_len, io)
        };
        if let Err(e) = io {
            let (w, path) = self.active.take().expect("active segment present");
            let file = file_name(&path);
            // Drop first: the buffered writer flushes on drop and may
            // push the torn frame's bytes to disk; the repair below
            // removes them again. The seq stays unconsumed — the frame
            // is physically gone, so the next record may reuse it.
            drop(w);
            self.repair_segment(&path, durable_len);
            return Err(PersistError::Frame { file, error: e });
        }
        self.next_seq += 1;
        let rotate = self
            .active
            .as_ref()
            .is_some_and(|(w, _)| w.len() >= self.segment_bytes);
        if rotate {
            // Seal and rotate; the next accepted delta opens a fresh
            // segment named by its sequence number.
            let (w, path) = self.active.take().expect("active segment present");
            let sealed_len = w.len();
            if let Err(e) = w.finish() {
                // The record itself is durable; only the trailer may
                // be torn. Truncate it away so the segment reads as a
                // clean unsealed tail (recovery's contiguity rule
                // accepts it once the next segment exists).
                let file = file_name(&path);
                self.repair_segment(&path, sealed_len);
                return Err(PersistError::Frame { file, error: e });
            }
        }
        Ok(seq)
    }

    /// Truncate a possibly-torn segment back to `durable_len` (its
    /// last durable whole-frame boundary), deleting it outright when
    /// no frame ever landed so the path is free for re-creation. On
    /// repair failure the WAL is poisoned.
    fn repair_segment(&mut self, path: &Path, durable_len: u64) {
        let repaired = (|| -> io::Result<()> {
            if durable_len <= WAL_HEADER_LEN {
                fs::remove_file(path)?;
            } else {
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(durable_len)?;
                f.sync_all()?;
            }
            sync_dir(&self.dir)
        })();
        if repaired.is_err() {
            self.poisoned = true;
        }
    }

    /// Delete every segment whose records are all `<= covered_seq`.
    /// A segment is covered iff the *next* segment starts at or below
    /// `covered_seq + 1` (its own records then all precede it); the
    /// active segment is never pruned.
    fn prune_covered(&self, covered_seq: u64) -> io::Result<usize> {
        let segs = segments(&self.dir)?;
        let mut pruned = 0;
        for (i, (first, path)) in segs.iter().enumerate() {
            let next_first = segs.get(i + 1).map(|&(n, _)| n);
            let covered = match next_first {
                Some(n) => n <= covered_seq + 1 && *first <= covered_seq,
                // Last (possibly active) segment: keep.
                None => false,
            };
            if covered {
                fs::remove_file(path)?;
                pruned += 1;
            }
        }
        if pruned > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(pruned)
    }
}

/// The ingestor's durability hook: owns the WAL and the archive
/// cadence. Create one with [`Persistence::create`] and hand it to
/// [`crate::ingest::DeltaIngestor::spawn_with_persistence`].
pub struct Persistence {
    cfg: PersistConfig,
    wal: DeltaWal,
    next_generation: u64,
    publishes_since_archive: u64,
    /// Archives written through this handle.
    archives_written: u64,
}

impl Persistence {
    /// Open (or initialize) a persistence directory. Orphaned temp
    /// files from a crashed archive write are removed; existing
    /// generations and WAL segments are left untouched (recovery reads
    /// them). `base_seq` is the sequence number of the last delta
    /// already durable *outside* the WAL this handle will write — 0
    /// for a fresh store, [`ReplayReport::next_seq`]` - 1` when
    /// resuming after [`recover`].
    pub fn create(cfg: PersistConfig, base_seq: u64) -> Result<Self, PersistError> {
        fs::create_dir_all(&cfg.dir)?;
        for entry in fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".tmp") {
                fs::remove_file(entry.path())?;
            }
        }
        let next_generation = generations(&cfg.dir)?
            .last()
            .map(|&(g, _)| g + 1)
            .unwrap_or(1);
        let wal = DeltaWal {
            dir: cfg.dir.clone(),
            segment_bytes: cfg.segment_bytes.max(1),
            active: None,
            next_seq: base_seq + 1,
            poisoned: false,
        };
        Ok(Self {
            cfg,
            wal,
            next_generation,
            publishes_since_archive: 0,
            archives_written: 0,
        })
    }

    /// Durably log one accepted delta (append + fsync) before it can
    /// reach a publish.
    pub fn record_accepted(&mut self, request: &DeltaRequest) -> Result<u64, PersistError> {
        self.wal.append(&request_to_portable(request))
    }

    /// Whether the publish cadence calls for an archive now. Counts
    /// the publish; the caller follows up with
    /// [`write_archive`](Self::write_archive) when `true`.
    pub fn archive_due(&mut self) -> bool {
        self.publishes_since_archive += 1;
        self.publishes_since_archive >= self.cfg.archive_every_publishes.max(1)
    }

    /// Write the next archive generation: temp file → three sealed
    /// frames (meta, portable corpus, snapshot) → fsync → atomic
    /// rename → directory fsync. On success, generations beyond
    /// `keep_generations` and WAL segments fully covered by the
    /// *oldest retained* generation are pruned — so even if the
    /// newest archive later rots, the older generation still has
    /// every WAL record it needs.
    pub fn write_archive(
        &mut self,
        snapshot: &IndexSnapshot,
        tables: &[PortableTable],
    ) -> Result<u64, PersistError> {
        let generation = self.next_generation;
        let covered_seq = self.wal.next_seq - 1;
        let final_path = archive_path(&self.cfg.dir, generation);
        let tmp_path = final_path.with_extension("msa.tmp");

        let mut meta = Vec::new();
        wire::put_u64(&mut meta, generation);
        wire::put_u64(&mut meta, covered_seq);
        wire::put_u64(&mut meta, snapshot.version());
        let mut corpus_frame = Vec::new();
        wire::put_u32(&mut corpus_frame, tables.len() as u32);
        for t in tables {
            t.encode_into(&mut corpus_frame);
        }
        let snapshot_frame = snapshot.persist_encode();

        let write = (|| {
            let mut w = FrameWriter::create(&tmp_path, ARCHIVE_KIND)?;
            w.write_frame(&meta)?;
            w.write_frame(&corpus_frame)?;
            w.write_frame(&snapshot_frame)?;
            w.finish()
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp_path);
            return Err(frame_err(&tmp_path, e));
        }
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.cfg.dir)?;

        self.next_generation += 1;
        self.publishes_since_archive = 0;
        self.archives_written += 1;

        // Retention: drop generations beyond the keep window, then
        // prune WAL segments the *oldest survivor* no longer needs.
        let gens = generations(&self.cfg.dir)?;
        let keep = self.cfg.keep_generations.max(1);
        if gens.len() > keep {
            for (_, path) in &gens[..gens.len() - keep] {
                fs::remove_file(path)?;
            }
            sync_dir(&self.cfg.dir)?;
        }
        let oldest_kept = &gens[gens.len().saturating_sub(keep)];
        let oldest_covered = load_archive(&oldest_kept.1)
            .map(|a| a.covered_seq)
            .unwrap_or(0);
        self.wal.prune_covered(oldest_covered)?;
        Ok(generation)
    }

    /// Archives written through this handle so far.
    pub fn archives_written(&self) -> u64 {
        self.archives_written
    }
}

/// How the WAL ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// No WAL segments at all (or none past the archive).
    Empty,
    /// The final segment was sealed (rotation landed exactly at the
    /// end).
    Sealed,
    /// The final segment is open (in-progress) but every record in it
    /// is whole.
    Open,
    /// The final segment ended in a torn record, which was truncated
    /// away.
    Torn,
}

/// What [`recover`] did, cell by cell — the observability surface the
/// fault matrix asserts on.
#[derive(Debug)]
pub struct ReplayReport {
    /// Generation of the archive recovery loaded.
    pub generation: u64,
    /// Version the archived snapshot carried (served immediately on
    /// restore, before replay).
    pub archive_version: u64,
    /// Archive generations tried before one loaded (1 = newest was
    /// valid).
    pub archives_tried: usize,
    /// The typed failure of each generation that was tried and failed,
    /// newest first.
    pub archive_errors: Vec<(u64, PersistError)>,
    /// WAL segment files scanned.
    pub wal_segments: usize,
    /// Records skipped as already covered by the archive.
    pub wal_skipped: u64,
    /// Records replayed through the apply path.
    pub wal_replayed: u64,
    /// Compaction passes triggered during replay.
    pub replay_compactions: u64,
    /// How the WAL ended.
    pub wal_tail: WalTail,
    /// Bytes removed when truncating a torn final record (0 unless
    /// `wal_tail == Torn`).
    pub torn_truncated_bytes: u64,
    /// A typed corruption that halted replay *mid-WAL* (sealed-segment
    /// rot). State is consistent up to the halt; records past it are
    /// lost and the caller decides whether that is acceptable.
    pub wal_halted: Option<Box<PersistError>>,
    /// Version served after recovery (== `archive_version` when no
    /// records replayed).
    pub served_version: u64,
    /// Sequence number the next accepted delta should carry — what
    /// [`Persistence::create`] takes as `base_seq + 1`.
    pub next_seq: u64,
    /// Wall-clock milliseconds spent in recovery end to end.
    pub elapsed_ms: f64,
}

/// Everything [`recover`] rebuilds.
pub struct Recovered {
    /// A fresh service already serving the recovered state.
    pub service: Arc<MappingService>,
    /// The replayed session (ready for more deltas or a respawned
    /// ingestor).
    pub session: SynthesisSession,
    /// The rebuilt corpus.
    pub corpus: Corpus,
    /// Stable key → live table id, in lockstep with the corpus.
    pub key_of_table: HashMap<u64, TableId>,
    /// What happened.
    pub report: ReplayReport,
}

/// Recover a serving state from `dir`: newest valid archive (with
/// generation fallback), then WAL tail replay through the shared
/// apply path, then one publish of the post-replay synthesis so the
/// served snapshot reflects the head state. See the module docs for
/// the failure policy; the one *repair* performed is physically
/// truncating a torn final WAL record.
pub fn recover(
    dir: &Path,
    config: PipelineConfig,
    resolver: Resolver,
) -> Result<Recovered, PersistError> {
    let started = Instant::now();

    // Phase 1: newest valid archive, falling back generation by
    // generation.
    let gens = generations(dir)?;
    if gens.is_empty() {
        return Err(PersistError::NoArchive);
    }
    let mut archive_errors: Vec<(u64, PersistError)> = Vec::new();
    let mut loaded: Option<LoadedArchive> = None;
    for (gen, path) in gens.iter().rev() {
        match load_archive(path) {
            Ok(a) => {
                loaded = Some(a);
                break;
            }
            Err(e) => archive_errors.push((*gen, e)),
        }
    }
    let Some(archive) = loaded else {
        return Err(PersistError::AllArchivesCorrupt {
            tried: archive_errors.len(),
        });
    };
    let archives_tried = archive_errors.len() + 1;

    // Phase 2: rebuild corpus + session from the archived portable
    // tables, and serve the archived snapshot immediately.
    let mut corpus = Corpus::new();
    let mut key_of_table: HashMap<u64, TableId> = HashMap::new();
    for t in &archive.tables {
        let d = corpus.domain(&t.domain);
        let columns: Vec<(Option<&str>, Vec<&str>)> = t
            .columns
            .iter()
            .map(|(h, vs)| {
                (
                    h.as_deref(),
                    vs.iter().map(String::as_str).collect::<Vec<&str>>(),
                )
            })
            .collect();
        let tid = corpus.push_table(d, columns);
        key_of_table.insert(t.key, tid);
    }
    let mut session = SynthesisSession::new(config);
    session.prepare(&corpus);
    let synthesis = session.config().synthesis;
    let service = Arc::new(MappingService::new());
    let archive_version = archive.snapshot.version();
    service.restore(archive.snapshot);

    // Phase 3: replay the WAL tail.
    let covered = archive.covered_seq;
    let mut expected = covered + 1;
    let segs = segments(dir)?;
    let mut wal_skipped = 0u64;
    let mut wal_replayed = 0u64;
    let mut replay_compactions = 0u64;
    let mut wal_tail = WalTail::Empty;
    let mut torn_truncated_bytes = 0u64;
    let mut wal_halted: Option<Box<PersistError>> = None;

    'segments: for (i, (_, path)) in segs.iter().enumerate() {
        let last = i + 1 == segs.len();
        let mut reader = match FrameReader::open(path, WAL_KIND) {
            Ok(r) => r,
            Err(e) => {
                wal_halted = Some(Box::new(frame_err(path, e)));
                break 'segments;
            }
        };
        loop {
            match reader.next_frame() {
                Ok(Some(record)) => {
                    let mut r = WireReader::new(&record);
                    let seq = r.u64().map_err(|e| decode_err(path, e))?;
                    if seq <= covered {
                        wal_skipped += 1;
                        continue;
                    }
                    if seq != expected {
                        return Err(PersistError::WalGap {
                            expected,
                            found: seq,
                        });
                    }
                    let delta = PortableDelta::decode(&record[r.position()..])
                        .map_err(|e| decode_err(path, e))?;
                    let request = portable_to_request(delta);
                    apply_request_to(
                        &mut session,
                        &mut corpus,
                        &mut key_of_table,
                        &request,
                        false,
                    )
                    .map_err(|error| PersistError::Replay { seq, error })?;
                    if session.compaction_due() {
                        compact_with_keys(&mut session, &mut corpus, &mut key_of_table);
                        replay_compactions += 1;
                    }
                    expected += 1;
                    wal_replayed += 1;
                }
                Ok(None) => {
                    match reader.tail() {
                        Some(FrameTail::Sealed) => {
                            if last {
                                wal_tail = WalTail::Sealed;
                            }
                        }
                        _ if last => {
                            wal_tail = WalTail::Open;
                            if reader.valid_len() <= WAL_HEADER_LEN {
                                // Header-only tail (crash between
                                // segment creation and the first
                                // record's fsync): delete it, so a
                                // resumed WAL can re-create the path
                                // for the same sequence number.
                                fs::remove_file(path)?;
                                sync_dir(dir)?;
                            }
                        }
                        // An unsealed non-final segment. This is the
                        // normal footprint of a recover→resume cycle:
                        // the pre-crash writer never seals its open
                        // segment, and the resumed WAL starts a fresh
                        // one. Accept it as long as the next segment
                        // begins at or before the record replay
                        // expects next — then nothing can be missing
                        // between the two (a genuine gap among
                        // uncovered records still trips `WalGap`
                        // below). A next segment starting *past*
                        // `expected` means this segment's tail was
                        // lost: halt with the typed cause.
                        _ => {
                            let next_first = segs[i + 1].0;
                            if next_first > expected {
                                wal_halted = Some(Box::new(frame_err(
                                    path,
                                    FrameError::MissingTrailer {
                                        frames: reader.frames_read(),
                                    },
                                )));
                                break 'segments;
                            }
                        }
                    }
                    continue 'segments;
                }
                Err(FrameError::Truncated { offset }) if last => {
                    // The torn-write case recovery repairs: drop the
                    // partial record so the next process appends from
                    // a whole-frame boundary.
                    let file_len = fs::metadata(path)?.len();
                    torn_truncated_bytes = file_len.saturating_sub(offset);
                    if offset <= WAL_HEADER_LEN {
                        // No whole record survived: drop the segment
                        // entirely so a resumed WAL can re-create the
                        // path.
                        fs::remove_file(path)?;
                    } else {
                        // The truncation itself must be durable before
                        // the directory barrier, or a crash here could
                        // resurrect the torn tail.
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(offset)?;
                        f.sync_all()?;
                    }
                    sync_dir(dir)?;
                    wal_tail = WalTail::Torn;
                    break 'segments;
                }
                Err(e) => {
                    // Corruption inside a sealed segment (or a non-torn
                    // failure in the last): halt replay with the typed
                    // cause; state is consistent up to here.
                    wal_halted = Some(Box::new(frame_err(path, e)));
                    break 'segments;
                }
            }
        }
    }

    // Phase 4: publish the post-replay synthesis so readers see the
    // head state. Replaying zero records against a real archive keeps
    // the archived snapshot as served (it *is* the head state, version
    // untouched); a base archive written before the first publish
    // (version 0) never reflects the corpus, so that case publishes
    // too — matching the tail publish an uncrashed shutdown performs.
    if wal_replayed > 0 || archive_version == 0 {
        let run = session.synthesize(&synthesis, resolver);
        service.publish_delta(&run.mappings);
    }

    let report = ReplayReport {
        generation: archive.generation,
        archive_version,
        archives_tried,
        archive_errors,
        wal_segments: segs.len(),
        wal_skipped,
        wal_replayed,
        replay_compactions,
        wal_tail,
        torn_truncated_bytes,
        wal_halted,
        served_version: service.version(),
        next_seq: expected,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
    };
    Ok(Recovered {
        service,
        session,
        corpus,
        key_of_table,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{DeltaIngestor, IngestorConfig, NoFaults};
    use std::time::Duration;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mapsynth-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn country_table(key: u64, rows: &[(&str, &str)]) -> TableSpec {
        TableSpec {
            key,
            domain: format!("d{}.example.org", key % 3),
            columns: vec![
                (
                    Some("country".into()),
                    rows.iter().map(|(c, _)| c.to_string()).collect(),
                ),
                (
                    Some("code".into()),
                    rows.iter().map(|(_, c)| c.to_string()).collect(),
                ),
            ],
        }
    }

    const ROWS: &[(&str, &str)] = &[
        ("United States", "USA"),
        ("Canada", "CAN"),
        ("Japan", "JPN"),
        ("Germany", "DEU"),
        ("France", "FRA"),
    ];

    fn base_state() -> (SynthesisSession, Corpus, Vec<u64>) {
        let mut corpus = Corpus::new();
        let mut keys = Vec::new();
        for k in 0..4u64 {
            let spec = country_table(100 + k, ROWS);
            let d = corpus.domain(&spec.domain);
            let columns: Vec<(Option<&str>, Vec<&str>)> = spec
                .columns
                .iter()
                .map(|(h, vs)| (h.as_deref(), vs.iter().map(String::as_str).collect()))
                .collect();
            corpus.push_table(d, columns);
            keys.push(100 + k);
        }
        let mut session = SynthesisSession::new(PipelineConfig::default());
        session.prepare(&corpus);
        (session, corpus, keys)
    }

    fn fast_cfg() -> IngestorConfig {
        IngestorConfig {
            queue_depth: 8,
            publish_every: 2,
            max_publish_attempts: 2,
            retry_base: Duration::from_micros(100),
            retry_cap: Duration::from_micros(200),
            resolver: Resolver::Algorithm4,
            quarantine_cap: 64,
        }
    }

    #[test]
    fn persistent_stream_recovers_identically() {
        let dir = tmp_dir("roundtrip");
        let (session, corpus, keys) = base_state();
        let service = Arc::new(MappingService::new());
        let mut pcfg = PersistConfig::new(&dir);
        pcfg.segment_bytes = 512; // force rotation
        pcfg.archive_every_publishes = 2;
        let persistence = Persistence::create(pcfg, 0).unwrap();
        let ing = DeltaIngestor::spawn_with_persistence(
            session,
            corpus,
            &keys,
            Arc::clone(&service),
            fast_cfg(),
            Box::new(NoFaults),
            Some(persistence),
        )
        .expect("spawn");
        for k in 0..6u64 {
            ing.submit(DeltaRequest {
                add: vec![country_table(200 + k, ROWS)],
                remove: if k >= 4 { vec![200 + k - 4] } else { vec![] },
                patches: vec![],
            });
        }
        let outcome = ing.shutdown();
        assert_eq!(outcome.stats.accepted, 6);
        assert_eq!(outcome.stats.wal_records, 6);
        assert_eq!(outcome.stats.persist_errors, 0);

        let recovered = recover(&dir, PipelineConfig::default(), Resolver::Algorithm4)
            .expect("recovery succeeds");
        let r = &recovered.report;
        assert!(r.wal_halted.is_none(), "no corruption: {:?}", r.wal_halted);
        assert!(r.archive_errors.is_empty(), "no generation failed to load");
        // The recovered live key set matches the uncrashed worker's.
        let mut live_a: Vec<u64> = outcome.key_of_table.keys().copied().collect();
        let mut live_b: Vec<u64> = recovered.key_of_table.keys().copied().collect();
        live_a.sort_unstable();
        live_b.sort_unstable();
        assert_eq!(live_a, live_b);
        // Served lookups agree between the uncrashed service and the
        // recovered one.
        let snap_a = service.snapshot();
        let snap_b = recovered.service.snapshot();
        for probe in ["United States", "USA", "Japan", "not-there"] {
            let a = snap_a.lookup(probe).map(|h| h.mappings().len());
            let b = snap_b.lookup(probe).map(|h| h.mappings().len());
            assert_eq!(a, b, "lookup {probe} diverged");
        }
        assert!(r.served_version >= r.archive_version);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A fresh append must never `File::create` over an existing
    /// segment: after a halted recovery the path can hold orphaned
    /// fsync-acknowledged records, and truncating them would be silent
    /// permanent loss. The WAL refuses with a typed error instead.
    #[test]
    fn wal_refuses_to_overwrite_an_existing_segment() {
        let dir = tmp_dir("clobber");
        let orphan = segment_path(&dir, 1);
        fs::write(&orphan, b"orphaned records").unwrap();
        let mut wal = DeltaWal {
            dir: dir.clone(),
            segment_bytes: u64::MAX,
            active: None,
            next_seq: 1,
            poisoned: false,
        };
        let err = wal.append(&PortableDelta::default()).unwrap_err();
        assert!(
            matches!(err, PersistError::Layout { .. }),
            "expected a typed refusal, got {err}"
        );
        assert_eq!(
            fs::read(&orphan).unwrap(),
            b"orphaned records",
            "the existing segment must be untouched"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_a_typed_error() {
        let dir = tmp_dir("empty");
        assert!(matches!(
            recover(&dir, PipelineConfig::default(), Resolver::Algorithm4),
            Err(PersistError::NoArchive)
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
