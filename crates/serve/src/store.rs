//! The [`MappingStore`] abstraction the applications program against.
//!
//! `mapsynth-apps`'s auto-correct/fill/join algorithms only need a
//! handful of queries over a set of mappings — containment ranking,
//! side membership, forward/reverse translation. This trait captures
//! them so the same application code runs against the build-once
//! `MappingIndex` and against a served [`IndexSnapshot`] handle taken
//! from a [`crate::service::MappingService`].
//!
//! All value arguments are **normalized** strings except
//! [`rank_by_containment`](MappingStore::rank_by_containment), which
//! (matching the historical `MappingIndex` contract) takes raw values
//! and normalizes internally.

use crate::snapshot::IndexSnapshot;

/// Read-only queries over an indexed set of mappings.
pub trait MappingStore {
    /// Number of mappings in the store.
    fn mapping_count(&self) -> usize;

    /// Rank mappings by how many of `values` (raw; normalized
    /// internally) they contain: `(mapping id, covered count)`,
    /// descending count, ties by ascending id.
    fn rank_by_containment(&self, values: &[&str]) -> Vec<(u32, usize)>;

    /// How `normalized` values are covered by `mapping`:
    /// `(as lefts, as rights, uncovered)`. Values on both sides count
    /// as lefts.
    fn coverage(&self, mapping: u32, normalized: &[String]) -> (usize, usize, usize);

    /// Whether `norm` is a left value of `mapping`.
    fn contains_left(&self, mapping: u32, norm: &str) -> bool;

    /// Whether `norm` is a right value of `mapping`.
    fn contains_right(&self, mapping: u32, norm: &str) -> bool;

    /// `norm`'s right image under `mapping`, if it is a left there.
    /// Borrowed from the store — the hot paths stay allocation-free.
    fn forward(&self, mapping: u32, norm: &str) -> Option<&str>;

    /// `norm`'s left preimages under `mapping` (empty if it is not a
    /// right there). Borrowed from the store.
    fn reverse(&self, mapping: u32, norm: &str) -> &[String];
}

impl MappingStore for IndexSnapshot {
    fn mapping_count(&self) -> usize {
        IndexSnapshot::mapping_count(self)
    }

    fn rank_by_containment(&self, values: &[&str]) -> Vec<(u32, usize)> {
        IndexSnapshot::rank_by_containment(self, values)
    }

    fn coverage(&self, mapping: u32, normalized: &[String]) -> (usize, usize, usize) {
        let (mut l, mut r, mut none) = (0, 0, 0);
        for hit in self.lookup_many_norm(normalized) {
            match hit {
                Some(h) if h.is_left(mapping) => l += 1,
                Some(h) if h.is_right(mapping) => r += 1,
                _ => none += 1,
            }
        }
        (l, r, none)
    }

    fn contains_left(&self, mapping: u32, norm: &str) -> bool {
        self.lookup_norm(norm).is_some_and(|h| h.is_left(mapping))
    }

    fn contains_right(&self, mapping: u32, norm: &str) -> bool {
        self.lookup_norm(norm).is_some_and(|h| h.is_right(mapping))
    }

    fn forward(&self, mapping: u32, norm: &str) -> Option<&str> {
        self.lookup_norm(norm).and_then(|h| h.forward(mapping))
    }

    fn reverse(&self, mapping: u32, norm: &str) -> &[String] {
        self.lookup_norm(norm)
            .and_then(|h| h.reverse(mapping))
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotBuilder;

    fn snapshot() -> IndexSnapshot {
        let mut b = SnapshotBuilder::with_shards(4);
        b.add_raw(
            None,
            &[
                ("California".into(), "CA".into()),
                ("Washington".into(), "WA".into()),
            ],
        );
        b.build()
    }

    #[test]
    fn trait_queries_match_snapshot_contents() {
        let s = snapshot();
        assert_eq!(MappingStore::mapping_count(&s), 1);
        assert!(s.contains_left(0, "california"));
        assert!(!s.contains_right(0, "california"));
        assert_eq!(s.forward(0, "washington"), Some("wa"));
        assert_eq!(s.reverse(0, "wa"), &["washington".to_string()][..]);
        assert!(s.reverse(0, "california").is_empty());
        let norms: Vec<String> = ["california", "wa", "nonsense"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(s.coverage(0, &norms), (1, 1, 1));
    }
}
