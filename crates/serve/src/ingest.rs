//! Fault-tolerant background delta ingestion: a bounded queue, a
//! publisher thread, quarantine for poisoned deltas.
//!
//! [`DeltaIngestor`] moves the delta stream behind the service
//! boundary (the ROADMAP's serving-while-streaming milestone): callers
//! [`submit`](DeltaIngestor::submit) key-addressed [`DeltaRequest`]s
//! into a **bounded** queue (a full queue blocks the producer —
//! backpressure, never unbounded memory) while a background worker
//! owns the [`SynthesisSession`] + [`Corpus`] and drives them
//! transactionally:
//!
//! 1. **validate** — keys resolve against the live table set, row
//!    patches are checked non-mutating ([`Corpus::check_row_patch`]);
//! 2. **apply** — the corpus is evolved, then
//!    [`SynthesisSession::apply_delta`] runs all-or-nothing (typed
//!    [`DeltaError`] + `catch_unwind` containment). On rejection the
//!    corpus is rolled back (appended tables truncated, applied row
//!    patches inverted in reverse order) so corpus and session stay
//!    in lockstep;
//! 3. **publish** — every `publish_every` accepted deltas the worker
//!    synthesizes and calls
//!    [`MappingService::publish_delta`], retrying transient publish
//!    failures with exponential backoff and **abandoning** (not
//!    crashing) after `max_publish_attempts` — the accepted deltas
//!    stay in the session, so the next publish carries them;
//! 4. **quarantine** — every rejected delta is recorded with its
//!    stream position, typed reason and the original request, and is
//!    observable while the stream runs
//!    ([`quarantined`](DeltaIngestor::quarantined) /
//!    [`drain_quarantine`](DeltaIngestor::drain_quarantine)).
//!
//! Readers are never involved: they keep cloning the last good
//! snapshot from the shared [`MappingService`] and sustain lookups
//! through malformed deltas, induced apply panics and publish
//! failures alike — the service degrades to *stale-until-next-publish*,
//! never to torn or absent.
//!
//! Determinism: the worker applies deltas in submission order on one
//! thread, so for a fixed request stream and [`FaultInjector`] plan
//! the post-stream session is reproducible and bit-identical to a
//! fresh session built from only the accepted deltas (the bench
//! crate's `--delta-stream --faults` tier gates exactly that).

use crate::persist::{PersistError, Persistence};
use crate::service::MappingService;
use mapsynth::delta::{fault, CorpusDelta, DeltaError};
use mapsynth::pipeline::{Resolver, SynthesisSession};
use mapsynth::SynthesisConfig;
use mapsynth_corpus::{Corpus, RowPatch, RowPatchError, TableId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// A table shipped to the ingestor: a caller-chosen stable key (the
/// ingestor's table ids shift across compactions; keys never do), the
/// provenance domain, and the columns.
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Caller-chosen stable identity; must not collide with a live
    /// table's key.
    pub key: u64,
    /// Provenance domain name (interned on accept).
    pub domain: String,
    /// Columns as `(header, values)`; all value vectors must share one
    /// length.
    pub columns: Vec<(Option<String>, Vec<String>)>,
}

/// A row patch addressed by table key instead of [`TableId`].
#[derive(Clone, Debug)]
pub struct PatchSpec {
    /// Key of the (live) table to edit.
    pub key: u64,
    /// Full-width tuples to delete (each must match a current row).
    pub deleted: Vec<Vec<String>>,
    /// Full-width tuples to append.
    pub inserted: Vec<Vec<String>>,
}

/// One unit of corpus evolution submitted to the ingestor — the
/// key-addressed analogue of [`CorpusDelta`].
#[derive(Clone, Debug, Default)]
pub struct DeltaRequest {
    /// Tables to append.
    pub add: Vec<TableSpec>,
    /// Keys of live tables to remove.
    pub remove: Vec<u64>,
    /// Row patches to live tables.
    pub patches: Vec<PatchSpec>,
}

/// Why the ingestor rejected (and quarantined) a [`DeltaRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// A `remove` or patch key that names no live table.
    UnknownKey {
        /// The unresolvable key.
        key: u64,
    },
    /// An `add` key that is already live (or repeated within the
    /// request).
    DuplicateKey {
        /// The colliding key.
        key: u64,
    },
    /// A row patch the corpus cannot apply.
    Patch(RowPatchError),
    /// The session rejected the delta (including contained apply
    /// panics — [`DeltaError::ApplyPanicked`]).
    Delta(DeltaError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::UnknownKey { key } => write!(f, "key {key} names no live table"),
            IngestError::DuplicateKey { key } => write!(f, "key {key} is already live"),
            IngestError::Patch(e) => write!(f, "corpus rejected patch: {e}"),
            IngestError::Delta(e) => write!(f, "session rejected delta: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Patch(e) => Some(e),
            IngestError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

/// A rejected delta held for inspection: where in the stream it sat,
/// why it was refused, and the request itself (for repair/replay).
#[derive(Clone, Debug)]
pub struct Quarantined {
    /// 0-based position in the submission stream.
    pub seq: u64,
    /// The typed rejection reason.
    pub error: IngestError,
    /// The original request, verbatim.
    pub request: DeltaRequest,
}

/// Counters of everything the worker has done so far. Monotone except
/// `quarantined`, which is the *currently held* entry count (drains
/// subtract).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Requests submitted to the queue.
    pub submitted: u64,
    /// Deltas applied end to end.
    pub accepted: u64,
    /// Deltas rejected (each one is quarantined).
    pub rejected: u64,
    /// Quarantine entries currently held (not yet drained).
    pub quarantined: u64,
    /// Successful snapshot publishes.
    pub publishes: u64,
    /// Publish attempts retried after a transient failure.
    pub publish_retries: u64,
    /// Publishes abandoned after `max_publish_attempts` failures (the
    /// served snapshot stayed on the last good version).
    pub publishes_abandoned: u64,
    /// Mid-stream compaction passes.
    pub compactions: u64,
    /// Quarantine entries dropped (oldest first) to hold
    /// [`IngestorConfig::quarantine_cap`].
    pub quarantine_evicted: u64,
    /// Accepted deltas durably appended to the WAL (0 without a
    /// persistence hook).
    pub wal_records: u64,
    /// Persistence operations (WAL appends, archive writes) that
    /// failed. Serving continues — durability degrades, lookups don't —
    /// but a nonzero count means recovery would lose the failed tail.
    pub persist_errors: u64,
}

/// Deterministic fault plan hook: the harness decides, per stream
/// position, whether to sabotage the apply (induced panic past
/// validation) or fail a publish attempt. The default methods inject
/// nothing, so production code passes [`NoFaults`].
pub trait FaultInjector: Send {
    /// Return `true` to arm an induced panic inside this delta's
    /// `apply_delta` (fired after the first artifact mutation —
    /// exercising containment + rollback). `seq` is the request's
    /// 0-based stream position.
    fn sabotage_apply(&mut self, seq: u64) -> bool {
        let _ = seq;
        false
    }

    /// Return `true` to simulate a transient failure of publish
    /// `publish_idx` (0-based), attempt `attempt` (0-based). The
    /// worker retries with exponential backoff up to
    /// `max_publish_attempts`.
    fn fail_publish(&mut self, publish_idx: u64, attempt: u32) -> bool {
        let _ = (publish_idx, attempt);
        false
    }
}

/// The production injector: no faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// Tuning knobs for [`DeltaIngestor::spawn`].
#[derive(Clone, Copy, Debug)]
pub struct IngestorConfig {
    /// Bounded queue depth; a full queue blocks `submit`
    /// (backpressure).
    pub queue_depth: usize,
    /// Publish after this many accepted deltas (and once more at
    /// shutdown for the tail).
    pub publish_every: usize,
    /// Publish attempts before abandoning (≥ 1).
    pub max_publish_attempts: u32,
    /// Backoff before retry `n` is `retry_base * 2^n`, capped at
    /// `retry_cap`.
    pub retry_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub retry_cap: Duration,
    /// Resolver used for the published mappings.
    pub resolver: Resolver,
    /// Most quarantine entries held at once. When a rejection would
    /// exceed the cap the **oldest** entries are dropped (counted in
    /// [`IngestStats::quarantine_evicted`]), so a hostile stream of
    /// poison deltas cannot grow memory without bound. `0` keeps
    /// nothing (every rejection is counted, then immediately evicted).
    pub quarantine_cap: usize,
}

impl Default for IngestorConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            publish_every: 8,
            max_publish_attempts: 4,
            retry_base: Duration::from_millis(1),
            retry_cap: Duration::from_millis(16),
            resolver: Resolver::Algorithm4,
            quarantine_cap: 1024,
        }
    }
}

/// A structurally invalid [`IngestorConfig`], refused at
/// [`DeltaIngestor::spawn`] instead of being silently clamped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestorConfigError {
    /// `queue_depth == 0`: a zero-capacity channel would deadlock the
    /// producer against the worker.
    ZeroQueueDepth,
    /// `publish_every == 0`: the publish cadence would never trigger.
    ZeroPublishEvery,
    /// `max_publish_attempts == 0`: every publish would be abandoned
    /// before its first attempt.
    ZeroPublishAttempts,
    /// `retry_cap < retry_base`: the first backoff sleep would already
    /// exceed the configured cap.
    RetryCapBelowBase {
        /// The configured base.
        base: Duration,
        /// The configured (smaller) cap.
        cap: Duration,
    },
}

impl fmt::Display for IngestorConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestorConfigError::ZeroQueueDepth => write!(f, "queue_depth must be nonzero"),
            IngestorConfigError::ZeroPublishEvery => write!(f, "publish_every must be nonzero"),
            IngestorConfigError::ZeroPublishAttempts => {
                write!(f, "max_publish_attempts must be nonzero")
            }
            IngestorConfigError::RetryCapBelowBase { base, cap } => {
                write!(f, "retry_cap {cap:?} is below retry_base {base:?}")
            }
        }
    }
}

impl std::error::Error for IngestorConfigError {}

/// Why [`DeltaIngestor::spawn_with_persistence`] refused to start.
#[derive(Debug)]
pub enum SpawnError {
    /// The config failed [`IngestorConfig::validate`].
    Config(IngestorConfigError),
    /// The base archive could not be written durably — starting the
    /// stream anyway would log WAL records no generation covers.
    Persist(PersistError),
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpawnError::Config(e) => write!(f, "invalid ingestor config: {e}"),
            SpawnError::Persist(e) => write!(f, "base archive write failed: {e}"),
        }
    }
}

impl std::error::Error for SpawnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpawnError::Config(e) => Some(e),
            SpawnError::Persist(e) => Some(e),
        }
    }
}

impl IngestorConfig {
    /// Check the structural invariants `spawn` relies on.
    pub fn validate(&self) -> Result<(), IngestorConfigError> {
        if self.queue_depth == 0 {
            return Err(IngestorConfigError::ZeroQueueDepth);
        }
        if self.publish_every == 0 {
            return Err(IngestorConfigError::ZeroPublishEvery);
        }
        if self.max_publish_attempts == 0 {
            return Err(IngestorConfigError::ZeroPublishAttempts);
        }
        if self.retry_cap < self.retry_base {
            return Err(IngestorConfigError::RetryCapBelowBase {
                base: self.retry_base,
                cap: self.retry_cap,
            });
        }
        Ok(())
    }
}

/// Everything the worker hands back at shutdown.
pub struct IngestOutcome {
    /// The post-stream session (bit-identical to a fresh session on
    /// the accepted-deltas-only corpus).
    pub session: SynthesisSession,
    /// The post-stream corpus (rolled back past every rejected delta).
    pub corpus: Corpus,
    /// Final counters.
    pub stats: IngestStats,
    /// Quarantine entries never drained mid-stream (the tail the cap
    /// kept).
    pub quarantine: Vec<Quarantined>,
    /// Stable key → live table id at shutdown (covers exactly the
    /// live tables; what a persistence archive stores per table).
    pub key_of_table: HashMap<u64, TableId>,
}

#[derive(Default)]
struct SharedState {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    publishes: AtomicU64,
    publish_retries: AtomicU64,
    publishes_abandoned: AtomicU64,
    compactions: AtomicU64,
    quarantine_evicted: AtomicU64,
    wal_records: AtomicU64,
    persist_errors: AtomicU64,
    quarantine: Mutex<Vec<Quarantined>>,
}

impl SharedState {
    fn quarantine_lock(&self) -> std::sync::MutexGuard<'_, Vec<Quarantined>> {
        // Pushes/drains of a Vec under the lock can't leave torn data;
        // recovering keeps inspection working even if a holder died.
        self.quarantine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn stats(&self) -> IngestStats {
        IngestStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            quarantined: self.quarantine_lock().len() as u64,
            publishes: self.publishes.load(Ordering::Relaxed),
            publish_retries: self.publish_retries.load(Ordering::Relaxed),
            publishes_abandoned: self.publishes_abandoned.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            quarantine_evicted: self.quarantine_evicted.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            persist_errors: self.persist_errors.load(Ordering::Relaxed),
        }
    }
}

enum WorkerMsg {
    Delta(DeltaRequest),
    Shutdown,
}

/// The background ingestion handle. See the module docs for the
/// pipeline it drives.
pub struct DeltaIngestor {
    tx: SyncSender<WorkerMsg>,
    shared: Arc<SharedState>,
    service: Arc<MappingService>,
    #[allow(clippy::type_complexity)]
    handle: Option<JoinHandle<(SynthesisSession, Corpus, HashMap<u64, TableId>)>>,
}

impl DeltaIngestor {
    /// Start the background worker over a prepared session and its
    /// corpus. `initial_keys[i]` is the caller's stable key for
    /// `TableId(i)`; the session must be freshly prepared (every
    /// corpus table live) so keys and tables correspond 1:1. The
    /// config is [validated](IngestorConfig::validate) first.
    ///
    /// # Panics
    /// Panics if `initial_keys` does not cover the corpus exactly
    /// (len mismatch or duplicate keys) — a programming error in the
    /// caller, not stream data.
    pub fn spawn(
        session: SynthesisSession,
        corpus: Corpus,
        initial_keys: &[u64],
        service: Arc<MappingService>,
        cfg: IngestorConfig,
        injector: Box<dyn FaultInjector>,
    ) -> Result<Self, IngestorConfigError> {
        match Self::spawn_with_persistence(
            session,
            corpus,
            initial_keys,
            service,
            cfg,
            injector,
            None,
        ) {
            Ok(ing) => Ok(ing),
            Err(SpawnError::Config(e)) => Err(e),
            // Unreachable without a persistence hook; keep the type
            // honest rather than panicking.
            Err(SpawnError::Persist(e)) => {
                unreachable!("persistence error without a persistence hook: {e}")
            }
        }
    }

    /// [`spawn`](Self::spawn) with an optional crash-safety hook: when
    /// `persistence` is `Some`, a **base archive** capturing the
    /// initial corpus and the currently served snapshot is written
    /// durably before the worker starts (so the WAL always has a
    /// covering generation beneath it), every accepted delta is
    /// appended + fsynced to the WAL before it can reach a publish,
    /// and archives are rolled forward on the configured publish
    /// cadence. Persistence failures *after* spawn never stop serving:
    /// they are counted in [`IngestStats::persist_errors`] and the
    /// worker keeps going on the in-memory path.
    pub fn spawn_with_persistence(
        session: SynthesisSession,
        corpus: Corpus,
        initial_keys: &[u64],
        service: Arc<MappingService>,
        cfg: IngestorConfig,
        injector: Box<dyn FaultInjector>,
        persistence: Option<Persistence>,
    ) -> Result<Self, SpawnError> {
        cfg.validate().map_err(SpawnError::Config)?;
        assert_eq!(initial_keys.len(), corpus.len(), "one key per corpus table");
        let mut key_of_table: HashMap<u64, TableId> = HashMap::new();
        for (i, &key) in initial_keys.iter().enumerate() {
            let prev = key_of_table.insert(key, TableId(i as u32));
            assert!(prev.is_none(), "duplicate initial key {key}");
        }
        let mut persist = persistence;
        if let Some(p) = &mut persist {
            p.write_archive(
                &service.snapshot(),
                &crate::persist::portable_tables(&corpus, &key_of_table),
            )
            .map_err(SpawnError::Persist)?;
        }
        let shared = Arc::new(SharedState::default());
        let (tx, rx) = sync_channel(cfg.queue_depth);
        let synthesis = session.config().synthesis;
        let worker = Worker {
            session,
            corpus,
            key_of_table,
            synthesis,
            service: Arc::clone(&service),
            shared: Arc::clone(&shared),
            cfg,
            injector,
            persist,
            seq: 0,
            publish_idx: 0,
            accepted_since_publish: 0,
        };
        let handle = thread::Builder::new()
            .name("delta-ingestor".into())
            .spawn(move || worker.run(rx))
            .expect("spawn delta-ingestor thread");
        Ok(Self {
            tx,
            shared,
            service,
            handle: Some(handle),
        })
    }

    /// Enqueue one delta. **Blocks** while the queue is at
    /// `queue_depth` — backpressure toward the producer, so a slow
    /// apply can never grow memory without bound.
    pub fn submit(&self, request: DeltaRequest) {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(WorkerMsg::Delta(request))
            .expect("delta-ingestor worker exited before shutdown");
    }

    /// The shared serving handle readers hold. Lookups on snapshots
    /// from here sustain through every ingestion failure mode.
    pub fn service(&self) -> &Arc<MappingService> {
        &self.service
    }

    /// Current counters (racy against the worker by design — exact
    /// after `shutdown`).
    pub fn stats(&self) -> IngestStats {
        self.shared.stats()
    }

    /// Inspect the quarantine without draining it.
    pub fn quarantined(&self) -> Vec<Quarantined> {
        self.shared.quarantine_lock().clone()
    }

    /// Drain the quarantine, taking ownership of every held entry
    /// (subsequent calls see only newer rejections).
    pub fn drain_quarantine(&self) -> Vec<Quarantined> {
        std::mem::take(&mut *self.shared.quarantine_lock())
    }

    /// Stop the worker: every already-submitted delta is processed,
    /// the tail of accepted-but-unpublished deltas is published, and
    /// the session + corpus come back for offline use (e.g. the
    /// bit-identity oracle).
    pub fn shutdown(mut self) -> IngestOutcome {
        let _ = self.tx.send(WorkerMsg::Shutdown);
        let handle = self.handle.take().expect("shutdown called once");
        match handle.join() {
            Ok((session, corpus, key_of_table)) => IngestOutcome {
                session,
                corpus,
                stats: self.shared.stats(),
                quarantine: std::mem::take(&mut *self.shared.quarantine_lock()),
                key_of_table,
            },
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

struct Worker {
    session: SynthesisSession,
    corpus: Corpus,
    /// Stable key → current live table id (remapped on compaction).
    key_of_table: HashMap<u64, TableId>,
    synthesis: SynthesisConfig,
    service: Arc<MappingService>,
    shared: Arc<SharedState>,
    cfg: IngestorConfig,
    injector: Box<dyn FaultInjector>,
    persist: Option<Persistence>,
    seq: u64,
    publish_idx: u64,
    accepted_since_publish: usize,
}

impl Worker {
    fn run(mut self, rx: Receiver<WorkerMsg>) -> (SynthesisSession, Corpus, HashMap<u64, TableId>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                WorkerMsg::Delta(request) => self.process(request),
                WorkerMsg::Shutdown => break,
            }
        }
        if self.accepted_since_publish > 0 || self.shared.publishes.load(Ordering::Relaxed) == 0 {
            self.publish_with_retry();
        }
        // Deliberately NO persistence finalization here: the on-disk
        // state a graceful shutdown leaves behind is exactly the state
        // a kill at this point would leave (modulo the tail publish's
        // archive cadence), which is what lets the recovery oracle
        // construct kill states without killing a process.
        (self.session, self.corpus, self.key_of_table)
    }

    fn process(&mut self, request: DeltaRequest) {
        let seq = self.seq;
        self.seq += 1;
        let sabotage = self.injector.sabotage_apply(seq);
        match apply_request_to(
            &mut self.session,
            &mut self.corpus,
            &mut self.key_of_table,
            &request,
            sabotage,
        ) {
            Ok(()) => {
                self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                self.accepted_since_publish += 1;
                // Durability before visibility, best-effort: the
                // accepted delta is fsynced into the WAL before the
                // publish cadence can pick it up. On an append failure
                // the WAL repairs itself (the torn frame is physically
                // removed — see `DeltaWal::append`) but the delta
                // stays applied and may still reach a publish: with
                // `persist_errors > 0` the served state can outrun
                // what recovery reconstructs. Durability degrades,
                // serving doesn't — the module's standing trade.
                if let Some(p) = &mut self.persist {
                    match p.record_accepted(&request) {
                        Ok(_seq) => {
                            self.shared.wal_records.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            self.shared.persist_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                if self.session.compaction_due() {
                    self.compact();
                }
                if self.accepted_since_publish >= self.cfg.publish_every {
                    self.publish_with_retry();
                }
            }
            Err(error) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                let mut quarantine = self.shared.quarantine_lock();
                quarantine.push(Quarantined {
                    seq,
                    error,
                    request,
                });
                // Drop-oldest to the cap: the newest rejection is the
                // one an operator inspects first.
                if quarantine.len() > self.cfg.quarantine_cap {
                    let excess = quarantine.len() - self.cfg.quarantine_cap;
                    quarantine.drain(..excess);
                    self.shared
                        .quarantine_evicted
                        .fetch_add(excess as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Reclaim tombstones and densely renumber, keeping the key map in
    /// lockstep.
    fn compact(&mut self) {
        compact_with_keys(&mut self.session, &mut self.corpus, &mut self.key_of_table);
        self.shared.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Synthesize once, then attempt the publish with exponential
    /// backoff on simulated-transient failures. Abandoning leaves the
    /// served snapshot on the last good version; the accepted deltas
    /// stay in the session and ride the next publish.
    fn publish_with_retry(&mut self) {
        let run = self.session.synthesize(&self.synthesis, self.cfg.resolver);
        let idx = self.publish_idx;
        self.publish_idx += 1;
        let mut attempt: u32 = 0;
        loop {
            if self.injector.fail_publish(idx, attempt) {
                attempt += 1;
                if attempt >= self.cfg.max_publish_attempts {
                    self.shared
                        .publishes_abandoned
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                self.shared.publish_retries.fetch_add(1, Ordering::Relaxed);
                let exp = attempt.saturating_sub(1).min(16);
                let backoff = self
                    .cfg
                    .retry_base
                    .saturating_mul(1u32 << exp)
                    .min(self.cfg.retry_cap);
                thread::sleep(backoff);
                continue;
            }
            self.service.publish_delta(&run.mappings);
            self.shared.publishes.fetch_add(1, Ordering::Relaxed);
            self.accepted_since_publish = 0;
            // Roll the archive forward on its cadence: the just-
            // installed snapshot plus the live corpus, covering every
            // WAL record so far — older generations and fully covered
            // WAL segments are then prunable.
            if let Some(p) = &mut self.persist {
                if p.archive_due() {
                    let tables = crate::persist::portable_tables(&self.corpus, &self.key_of_table);
                    if p.write_archive(&self.service.snapshot(), &tables).is_err() {
                        self.shared.persist_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            return;
        }
    }
}

/// Resolve a key-addressed request against the live table set, evolve
/// the corpus, and run the guarded [`SynthesisSession::apply_delta`] —
/// the single apply path shared by the live ingestion worker and WAL
/// replay during recovery (which is what makes replay
/// observation-identical to the original stream). On any rejection the
/// corpus is rolled back to byte-equivalent content (appended tables
/// truncated, applied patches inverted in reverse order — table row
/// *order* may differ, which extraction canonicalizes away), keeping
/// it in lockstep with the untouched session. `sabotage` arms the
/// fault injector's induced apply panic (always `false` outside the
/// fault harness).
pub(crate) fn apply_request_to(
    session: &mut SynthesisSession,
    corpus: &mut Corpus,
    key_of_table: &mut HashMap<u64, TableId>,
    request: &DeltaRequest,
    sabotage: bool,
) -> Result<(), IngestError> {
    // Key resolution — pure.
    let mut removed: Vec<TableId> = Vec::with_capacity(request.remove.len());
    for &key in &request.remove {
        let tid = *key_of_table
            .get(&key)
            .ok_or(IngestError::UnknownKey { key })?;
        removed.push(tid);
    }
    let mut patches: Vec<RowPatch> = Vec::with_capacity(request.patches.len());
    for p in &request.patches {
        let tid = *key_of_table
            .get(&p.key)
            .ok_or(IngestError::UnknownKey { key: p.key })?;
        patches.push(RowPatch {
            table: tid,
            deleted: p.deleted.clone(),
            inserted: p.inserted.clone(),
        });
    }
    let mut fresh: std::collections::HashSet<u64> = Default::default();
    for t in &request.add {
        if key_of_table.contains_key(&t.key) || !fresh.insert(t.key) {
            return Err(IngestError::DuplicateKey { key: t.key });
        }
    }

    // Corpus evolution, recorded for rollback.
    let len_before = corpus.len();
    let mut applied: Vec<RowPatch> = Vec::new();
    let mut failure: Option<IngestError> = None;
    for p in &patches {
        if let Err(e) = corpus.check_row_patch(p) {
            failure = Some(IngestError::Patch(e));
            break;
        }
        corpus.apply_row_patch(p);
        applied.push(p.clone());
    }
    let mut added: Vec<TableId> = Vec::with_capacity(request.add.len());
    if failure.is_none() {
        for t in &request.add {
            let d = corpus.domain(&t.domain);
            let columns: Vec<(Option<&str>, Vec<&str>)> = t
                .columns
                .iter()
                .map(|(h, vs)| {
                    (
                        h.as_deref(),
                        vs.iter().map(String::as_str).collect::<Vec<&str>>(),
                    )
                })
                .collect();
            added.push(corpus.push_table(d, columns));
        }
        let delta = CorpusDelta {
            added: added.clone(),
            removed,
            patches: applied.clone(),
        };
        if sabotage {
            fault::arm_induced_panic();
        }
        let applied_result = session.apply_delta(corpus, &delta);
        // A validation-rejected sabotaged delta never reaches the
        // fire point; don't let the arm leak onto the next delta.
        fault::disarm();
        match applied_result {
            Ok(_) => {
                for (t, tid) in request.add.iter().zip(added) {
                    key_of_table.insert(t.key, tid);
                }
                for key in &request.remove {
                    key_of_table.remove(key);
                }
                return Ok(());
            }
            Err(e) => failure = Some(IngestError::Delta(e)),
        }
    }

    // Rollback: drop appended tables, invert applied patches.
    corpus.truncate_tables(len_before);
    for p in applied.iter().rev() {
        let inverse = RowPatch {
            table: p.table,
            deleted: p.inserted.clone(),
            inserted: p.deleted.clone(),
        };
        corpus.apply_row_patch(&inverse);
    }
    Err(failure.unwrap_or(IngestError::DuplicateKey { key: u64::MAX }))
}

/// Reclaim tombstones and densely renumber, keeping the key map in
/// lockstep: compaction preserves the relative order of live tables,
/// so the k-th smallest live id becomes `TableId(k)`. Shared by the
/// ingestion worker and WAL replay.
pub(crate) fn compact_with_keys(
    session: &mut SynthesisSession,
    corpus: &mut Corpus,
    key_of_table: &mut HashMap<u64, TableId>,
) {
    *corpus = session.compact(corpus);
    let mut entries: Vec<(u64, TableId)> = key_of_table.drain().collect();
    entries.sort_by_key(|&(_, tid)| tid.0);
    debug_assert_eq!(
        entries.len(),
        corpus.len(),
        "key map must cover exactly the live tables"
    );
    for (k, (key, _)) in entries.into_iter().enumerate() {
        key_of_table.insert(key, TableId(k as u32));
    }
}
