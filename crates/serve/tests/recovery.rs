//! The recovery oracle: for every kill point along a persisted delta
//! stream — right after the base archive, mid-WAL between publishes,
//! and inside a torn final record — [`mapsynth_serve::recover`] must
//! rebuild a service whose lookups, golden compatibility edges, and
//! live key set are identical to an uncrashed run over the same
//! prefix, with a monotone served version.
//!
//! The ingestor's graceful shutdown deliberately performs no
//! persistence finalization, so the on-disk state after `shutdown()`
//! at stream position `k` is byte-identical to a `kill -9` at the
//! same point — each sweep cell below *is* a kill state, constructed
//! without killing processes.

use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth_corpus::Corpus;
use mapsynth_serve::ingest::{DeltaIngestor, DeltaRequest, IngestorConfig, NoFaults, TableSpec};
use mapsynth_serve::{recover, MappingService, PersistConfig, Persistence, WalTail};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const ROWS: [(&str, &str); 6] = [
    ("Afghanistan", "AFG"),
    ("Albania", "ALB"),
    ("Algeria", "DZA"),
    ("Germany", "DEU"),
    ("Netherlands", "NLD"),
    ("Greece", "GRC"),
];

fn fixture(n: usize) -> (Corpus, SynthesisSession, Vec<u64>) {
    let mut corpus = Corpus::new();
    for i in 0..n {
        let d = corpus.domain(&format!("iso-{i}.org"));
        let (mut l, mut r): (Vec<String>, Vec<String>) = ROWS
            .iter()
            .map(|&(a, b)| (a.to_string(), b.to_string()))
            .unzip();
        l.push(format!("Zamunda-{i}"));
        r.push(format!("ZAM{i}"));
        let cols: Vec<(Option<&str>, Vec<&str>)> = vec![
            (Some("country"), l.iter().map(String::as_str).collect()),
            (Some("code"), r.iter().map(String::as_str).collect()),
        ];
        corpus.push_table(d, cols);
    }
    let cfg = PipelineConfig {
        compact_threshold: 0.2,
        ..PipelineConfig::default()
    };
    let mut session = SynthesisSession::new(cfg);
    session.prepare(&corpus);
    let keys: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    (corpus, session, keys)
}

fn add_table(key: u64, domain: &str, extra: &str) -> TableSpec {
    let (mut l, mut r): (Vec<String>, Vec<String>) = ROWS
        .iter()
        .map(|&(a, b)| (a.to_string(), b.to_string()))
        .unzip();
    l.push(extra.to_string());
    r.push(format!("X{key}"));
    TableSpec {
        key,
        domain: domain.to_string(),
        columns: vec![(Some("country".into()), l), (Some("code".into()), r)],
    }
}

/// The deterministic delta stream every sweep cell replays a prefix
/// of: adds, a removal, more adds — enough accepted deltas to cross
/// several publishes and (at the cadence below) archive rolls.
fn stream() -> Vec<DeltaRequest> {
    let mut deltas = Vec::new();
    for i in 0..4u64 {
        deltas.push(DeltaRequest {
            add: vec![add_table(
                200 + i,
                &format!("wave-a-{i}.org"),
                &format!("Aland-{i}"),
            )],
            ..Default::default()
        });
    }
    deltas.push(DeltaRequest {
        remove: vec![200, 201],
        ..Default::default()
    });
    for i in 0..3u64 {
        deltas.push(DeltaRequest {
            add: vec![add_table(
                300 + i,
                &format!("wave-b-{i}.org"),
                &format!("Borduria-{i}"),
            )],
            ..Default::default()
        });
    }
    deltas
}

fn ing_cfg() -> IngestorConfig {
    IngestorConfig {
        publish_every: 2,
        retry_base: Duration::from_micros(100),
        retry_cap: Duration::from_micros(500),
        ..IngestorConfig::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mapsynth-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The pipeline config every run (persisted, oracle, recovery) shares.
fn pipe_cfg() -> PipelineConfig {
    PipelineConfig {
        compact_threshold: 0.2,
        ..PipelineConfig::default()
    }
}

/// Run the first `k` stream deltas through a **persistent** ingestor
/// rooted at `pcfg.dir`, then shut down — leaving the directory as
/// the kill state.
fn run_persisted(k: usize, pcfg: PersistConfig) -> mapsynth_serve::IngestOutcome {
    let (corpus, session, keys) = fixture(4);
    let service = Arc::new(MappingService::new());
    let persistence = Persistence::create(pcfg, 0).expect("init persistence");
    let ing = DeltaIngestor::spawn_with_persistence(
        session,
        corpus,
        &keys,
        Arc::clone(&service),
        ing_cfg(),
        Box::new(NoFaults),
        Some(persistence),
    )
    .expect("spawn persisted ingestor");
    for delta in stream().into_iter().take(k) {
        ing.submit(delta);
    }
    let outcome = ing.shutdown();
    assert_eq!(
        outcome.stats.accepted, k as u64,
        "clean stream: all accepted"
    );
    assert_eq!(
        outcome.stats.wal_records, k as u64,
        "every accept hit the WAL"
    );
    assert_eq!(outcome.stats.persist_errors, 0);
    outcome
}

/// The uncrashed oracle: the same `k` deltas through a plain
/// (non-persistent) ingestor.
fn run_oracle(k: usize) -> (mapsynth_serve::IngestOutcome, Arc<MappingService>) {
    let (corpus, session, keys) = fixture(4);
    let service = Arc::new(MappingService::new());
    let ing = DeltaIngestor::spawn(
        session,
        corpus,
        &keys,
        Arc::clone(&service),
        ing_cfg(),
        Box::new(NoFaults),
    )
    .expect("spawn oracle ingestor");
    for delta in stream().into_iter().take(k) {
        ing.submit(delta);
    }
    (ing.shutdown(), service)
}

/// Golden edges of a state: a *fresh* session prepared on the live
/// corpus, graphed. Fresh preparation gives ID-stable edge lists, so
/// two states with identical content produce byte-identical dumps.
fn golden_edges(session: &SynthesisSession, corpus: &Corpus) -> String {
    use std::fmt::Write as _;
    let live = session.live_corpus(corpus);
    let mut fresh = SynthesisSession::new(session.config().clone());
    fresh.prepare(&live);
    let graph = fresh.graph(&fresh.config().synthesis);
    let mut edges: Vec<String> = graph
        .edges
        .iter()
        .map(|&(a, b, w)| format!("{a} {b} {:.17e} {:.17e}", w.pos, w.neg))
        .collect();
    edges.sort();
    let mut out = String::new();
    for e in &edges {
        writeln!(out, "{e}").unwrap();
    }
    out
}

const PROBES: [&str; 6] = [
    "Afghanistan",
    "DZA",
    "Aland-2",
    "Borduria-0",
    "Zamunda-1",
    "definitely-not-present",
];

/// Lookup observations of a snapshot: per probe, the sorted forward
/// translations across every mapping that hits. Mapping *ids* are
/// deliberately not compared — an incrementally patched snapshot and
/// a one-shot rebuild number mappings differently while serving the
/// same content.
fn lookups(snapshot: &mapsynth_serve::IndexSnapshot) -> Vec<(String, Vec<String>)> {
    PROBES
        .iter()
        .map(|&p| {
            let mut hits: Vec<String> = snapshot
                .lookup(p)
                .map(|h| h.translations().map(|(_, r)| r.to_string()).collect())
                .unwrap_or_default();
            hits.sort();
            (p.to_string(), hits)
        })
        .collect()
}

fn assert_state_matches(
    recovered: &mapsynth_serve::Recovered,
    oracle: &mapsynth_serve::IngestOutcome,
    oracle_service: &MappingService,
    cell: &str,
) {
    // Live key set.
    let mut a: Vec<u64> = recovered.key_of_table.keys().copied().collect();
    let mut b: Vec<u64> = oracle.key_of_table.keys().copied().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "{cell}: live key set diverged");
    // Golden compatibility edges.
    assert_eq!(
        golden_edges(&recovered.session, &recovered.corpus),
        golden_edges(&oracle.session, &oracle.corpus),
        "{cell}: golden edges diverged"
    );
    // Served lookups.
    assert_eq!(
        lookups(&recovered.service.snapshot()),
        lookups(&oracle_service.snapshot()),
        "{cell}: served lookups diverged"
    );
    // Version monotonicity: replay never rolls the served version
    // backwards past what the archive carried.
    assert!(
        recovered.report.served_version >= recovered.report.archive_version,
        "{cell}: served version regressed below the archive's"
    );
}

/// Kill-point sweep: every prefix length of the stream, from
/// "archive only, empty WAL" (k = 0) through "mid-WAL between
/// publishes" to the full stream.
#[test]
fn kill_point_sweep_recovers_identically() {
    let n = stream().len();
    for k in 0..=n {
        let dir = tmp_dir(&format!("sweep-{k}"));
        let mut pcfg = PersistConfig::new(&dir);
        pcfg.segment_bytes = 700; // several rotations across the stream
        pcfg.archive_every_publishes = 2;
        run_persisted(k, pcfg);

        let recovered = recover(&dir, pipe_cfg(), Resolver::Algorithm4)
            .unwrap_or_else(|e| panic!("kill point {k}: recovery failed: {e}"));
        assert!(
            recovered.report.wal_halted.is_none(),
            "kill point {k}: clean WAL reported corrupt"
        );
        assert_ne!(
            recovered.report.wal_tail,
            WalTail::Torn,
            "kill point {k}: clean WAL reported torn"
        );
        assert_eq!(
            recovered.report.next_seq,
            k as u64 + 1,
            "kill point {k}: next_seq resumes after the last accepted record"
        );

        let (oracle, oracle_service) = run_oracle(k);
        assert_state_matches(
            &recovered,
            &oracle,
            &oracle_service,
            &format!("kill point {k}"),
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A torn final record — the tail of the last WAL segment cut
/// mid-frame, as a crash during the final append would leave it — is
/// truncated away, and recovery lands on the previous record's state
/// (the torn record was never durably acknowledged). A second
/// recovery over the repaired directory sees a clean tail.
#[test]
fn torn_final_record_truncates_to_previous_state() {
    let k = stream().len();
    let dir = tmp_dir("torn");
    let mut pcfg = PersistConfig::new(&dir);
    // No archive rolls beyond the base generation: every record lives
    // in the WAL, so tearing the last one is observable.
    pcfg.archive_every_publishes = 1_000_000;
    pcfg.segment_bytes = u64::MAX;
    run_persisted(k, pcfg);

    // Shear the last WAL segment mid-record: 5 bytes is inside the
    // final frame's payload/checksum for any non-trivial record.
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|s| s.to_str()) == Some("mswal")).then_some(p)
        })
        .collect();
    segs.sort();
    let last = segs.last().expect("stream wrote a WAL segment");
    let len = fs::metadata(last).unwrap().len();
    let f = fs::OpenOptions::new().write(true).open(last).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let recovered =
        recover(&dir, pipe_cfg(), Resolver::Algorithm4).expect("torn tail must recover, not fail");
    assert_eq!(recovered.report.wal_tail, WalTail::Torn);
    assert!(recovered.report.torn_truncated_bytes > 0);
    assert_eq!(
        recovered.report.wal_replayed,
        k as u64 - 1,
        "the torn record is dropped; every whole record replays"
    );
    let (oracle, oracle_service) = run_oracle(k - 1);
    assert_state_matches(&recovered, &oracle, &oracle_service, "torn tail");

    // The repair was physical: a second recovery sees a clean tail
    // and the same state.
    let again = recover(&dir, pipe_cfg(), Resolver::Algorithm4)
        .expect("repaired directory recovers cleanly");
    assert_ne!(
        again.report.wal_tail,
        WalTail::Torn,
        "repair did not persist"
    );
    assert_eq!(again.report.wal_replayed, k as u64 - 1);
    assert_state_matches(&again, &oracle, &oracle_service, "torn tail (second pass)");
    let _ = fs::remove_dir_all(&dir);
}

/// Stable keys of a recovered state in live-table order — what a
/// respawn over it passes as `initial_keys`. The recovered corpus is
/// dense in live tables (rebuilt from the archive + replay with
/// compaction), so keys line up 1:1.
fn live_keys(recovered: &mapsynth_serve::Recovered) -> Vec<u64> {
    let mut entries: Vec<(u64, u32)> = recovered
        .key_of_table
        .iter()
        .map(|(&k, &t)| (k, t.0))
        .collect();
    entries.sort_by_key(|&(_, t)| t);
    assert_eq!(entries.len(), recovered.corpus.len());
    entries.into_iter().map(|(k, _)| k).collect()
}

/// Recovery composes with resumption: a recovered state can seed a
/// fresh persistent ingestor (base archive from the recovered
/// snapshot, WAL continuing at `next_seq`), accept more deltas, and a
/// final recovery over the same directory matches an uncrashed run of
/// the whole stream.
#[test]
fn recovered_state_resumes_and_survives_a_second_crash() {
    let n = stream().len();
    let split = n / 2;
    let dir = tmp_dir("resume");
    let mut pcfg = PersistConfig::new(&dir);
    pcfg.archive_every_publishes = 2;
    pcfg.segment_bytes = 700;
    run_persisted(split, pcfg.clone());

    let recovered = recover(&dir, pipe_cfg(), Resolver::Algorithm4).expect("first recovery");
    let base_seq = recovered.report.next_seq - 1;
    let keys = live_keys(&recovered);

    let persistence = Persistence::create(pcfg, base_seq).expect("re-init persistence");
    let ing = DeltaIngestor::spawn_with_persistence(
        recovered.session,
        recovered.corpus,
        &keys,
        Arc::clone(&recovered.service),
        ing_cfg(),
        Box::new(NoFaults),
        Some(persistence),
    )
    .expect("respawn over recovered state");
    for delta in stream().into_iter().skip(split) {
        ing.submit(delta);
    }
    let outcome = ing.shutdown();
    assert_eq!(outcome.stats.accepted, (n - split) as u64);
    assert_eq!(outcome.stats.persist_errors, 0);

    let final_recovery = recover(&dir, pipe_cfg(), Resolver::Algorithm4).expect("second recovery");
    assert_eq!(final_recovery.report.next_seq, n as u64 + 1);
    let (oracle, oracle_service) = run_oracle(n);
    assert_state_matches(&final_recovery, &oracle, &oracle_service, "resume");
    let _ = fs::remove_dir_all(&dir);
}

/// The crash window the archive cadence can't paper over: a resumed
/// stream dies again *before any archive roll*, so the post-resume
/// records live only in the WAL — behind the pre-crash segment, which
/// the resume left unsealed and non-final. Recovery must accept that
/// segment by contiguity and replay every fsync-acknowledged record,
/// not halt and (on the next resume) overwrite them. A third
/// crash/resume cycle then chains *two* unsealed non-final segments.
#[test]
fn resume_crash_before_archive_roll_loses_nothing() {
    let n = stream().len();
    let split = n / 2;
    let dir = tmp_dir("resume-no-roll");
    let mut pcfg = PersistConfig::new(&dir);
    // One unbounded segment per process lifetime and no archive rolls
    // past each spawn's base generation: every post-resume record is
    // recoverable only via WAL replay. Retention is deep enough that
    // no resume prunes the earlier unsealed segments away — the chain
    // itself is under test.
    pcfg.segment_bytes = u64::MAX;
    pcfg.archive_every_publishes = 1_000_000;
    pcfg.keep_generations = 3;
    run_persisted(split, pcfg.clone());

    // Crash 1 → resume: the first segment stays behind, unsealed.
    let recovered = recover(&dir, pipe_cfg(), Resolver::Algorithm4).expect("first recovery");
    assert!(recovered.report.wal_halted.is_none());
    let keys = live_keys(&recovered);
    let persistence =
        Persistence::create(pcfg.clone(), recovered.report.next_seq - 1).expect("resume 1");
    let ing = DeltaIngestor::spawn_with_persistence(
        recovered.session,
        recovered.corpus,
        &keys,
        Arc::clone(&recovered.service),
        ing_cfg(),
        Box::new(NoFaults),
        Some(persistence),
    )
    .expect("respawn over recovered state");
    for delta in stream().into_iter().skip(split) {
        ing.submit(delta);
    }
    let outcome = ing.shutdown();
    assert_eq!(outcome.stats.wal_records, (n - split) as u64);
    assert_eq!(outcome.stats.persist_errors, 0);

    // Crash 2: no archive covered the resumed records, so replay must
    // walk past the unsealed pre-crash segment into the resumed one.
    let second = recover(&dir, pipe_cfg(), Resolver::Algorithm4).expect("second recovery");
    assert!(
        second.report.wal_halted.is_none(),
        "the resume's unsealed predecessor segment was mistaken for corruption: {:?}",
        second.report.wal_halted
    );
    assert_eq!(
        second.report.next_seq,
        n as u64 + 1,
        "every fsync-acknowledged record must survive the resume crash"
    );
    assert_eq!(second.report.wal_replayed, (n - split) as u64);
    let (oracle, oracle_service) = run_oracle(n);
    assert_state_matches(&second, &oracle, &oracle_service, "resume without archive roll");

    // Crash 3: resume once more (two unsealed non-final segments now
    // precede the tail) and prove the chain still replays end to end.
    let keys = live_keys(&second);
    let persistence =
        Persistence::create(pcfg.clone(), second.report.next_seq - 1).expect("resume 2");
    let ing = DeltaIngestor::spawn_with_persistence(
        second.session,
        second.corpus,
        &keys,
        Arc::clone(&second.service),
        ing_cfg(),
        Box::new(NoFaults),
        Some(persistence),
    )
    .expect("respawn twice over recovered state");
    ing.submit(DeltaRequest {
        add: vec![add_table(400, "wave-c-0.org", "Cydonia")],
        ..Default::default()
    });
    let outcome = ing.shutdown();
    assert_eq!(outcome.stats.persist_errors, 0);

    let third = recover(&dir, pipe_cfg(), Resolver::Algorithm4).expect("third recovery");
    assert!(third.report.wal_halted.is_none());
    assert_eq!(third.report.next_seq, n as u64 + 2);
    assert!(
        third.key_of_table.contains_key(&400),
        "the post-second-resume record must replay"
    );
    let snapshot = third.service.snapshot();
    assert!(
        snapshot.lookup("Cydonia").is_some(),
        "served state must include the final delta"
    );
    let _ = fs::remove_dir_all(&dir);
}
