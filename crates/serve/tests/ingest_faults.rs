//! Fault-tolerant ingestion end to end: the background worker must
//! apply clean deltas transactionally, quarantine every poisoned one
//! with a typed reason, survive induced apply panics, retry/abandon
//! failed publishes without ever serving a torn snapshot — and the
//! post-stream session must be bit-identical (observable synthesis
//! output) to a fresh session built from only the accepted deltas.

use mapsynth::delta::fault::INDUCED_PANIC_MESSAGE;
use mapsynth::delta::DeltaError;
use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth_corpus::{Corpus, RowPatchError};
use mapsynth_serve::ingest::{
    DeltaIngestor, DeltaRequest, FaultInjector, IngestError, IngestorConfig, IngestorConfigError,
    NoFaults, PatchSpec, TableSpec,
};
use mapsynth_serve::MappingService;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

const ROWS: [(&str, &str); 6] = [
    ("Afghanistan", "AFG"),
    ("Albania", "ALB"),
    ("Algeria", "DZA"),
    ("Germany", "DEU"),
    ("Netherlands", "NLD"),
    ("Greece", "GRC"),
];

/// `n` country→code tables under distinct domains — each with one
/// table-unique row, so removals actually orphan values (making
/// compaction reachable) — with stable ingest keys `100..100+n`.
fn fixture(n: usize) -> (Corpus, SynthesisSession, Vec<u64>) {
    let mut corpus = Corpus::new();
    for i in 0..n {
        let d = corpus.domain(&format!("iso-{i}.org"));
        let (mut l, mut r): (Vec<String>, Vec<String>) = ROWS
            .iter()
            .map(|&(a, b)| (a.to_string(), b.to_string()))
            .unzip();
        l.push(format!("Zamunda-{i}"));
        r.push(format!("ZAM{i}"));
        let cols: Vec<(Option<&str>, Vec<&str>)> = vec![
            (Some("country"), l.iter().map(String::as_str).collect()),
            (Some("code"), r.iter().map(String::as_str).collect()),
        ];
        corpus.push_table(d, cols);
    }
    let cfg = PipelineConfig {
        compact_threshold: 0.2,
        ..PipelineConfig::default()
    };
    let mut session = SynthesisSession::new(cfg);
    session.prepare(&corpus);
    let keys: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
    (corpus, session, keys)
}

fn fast_cfg() -> IngestorConfig {
    IngestorConfig {
        retry_base: Duration::from_micros(100),
        retry_cap: Duration::from_micros(500),
        ..IngestorConfig::default()
    }
}

fn add_table(key: u64, domain: &str, rows: &[(&str, &str)]) -> TableSpec {
    let (l, r): (Vec<String>, Vec<String>) = rows
        .iter()
        .map(|&(a, b)| (a.to_string(), b.to_string()))
        .unzip();
    TableSpec {
        key,
        domain: domain.to_string(),
        columns: vec![(Some("country".into()), l), (Some("code".into()), r)],
    }
}

fn patch(key: u64, deleted: &[(&str, &str)], inserted: &[(&str, &str)]) -> PatchSpec {
    let tup = |rows: &[(&str, &str)]| {
        rows.iter()
            .map(|&(a, b)| vec![a.to_string(), b.to_string()])
            .collect::<Vec<_>>()
    };
    PatchSpec {
        key,
        deleted: tup(deleted),
        inserted: tup(inserted),
    }
}

/// One observed mapping: sorted value pairs + provenance counts.
type ObservedMapping = (Vec<(String, String)>, usize, usize);

/// The full observable synthesis output, content-keyed: for bit-identity
/// oracles between an evolved session and a fresh one.
fn observed(session: &SynthesisSession) -> Vec<ObservedMapping> {
    let cfg = session.config().synthesis;
    let mut out: Vec<_> = session
        .synthesize(&cfg, Resolver::Algorithm4)
        .mappings
        .iter()
        .map(|m| {
            let mut pairs: Vec<(String, String)> = m
                .pair_strs()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect();
            pairs.sort();
            (pairs, m.domains, m.source_tables)
        })
        .collect();
    out.sort();
    out
}

/// The bit-identity oracle: a fresh session prepared on the live
/// corpus (accepted deltas only — rejected ones were rolled back) must
/// observe exactly what the streamed session observes.
fn assert_matches_fresh(session: &SynthesisSession, corpus: &Corpus) {
    let live = session.live_corpus(corpus);
    let mut fresh = SynthesisSession::new(session.config().clone());
    fresh.prepare(&live);
    assert_eq!(
        observed(session),
        observed(&fresh),
        "streamed session diverged from the accepted-deltas oracle"
    );
}

fn wait_until(ing: &DeltaIngestor, pred: impl Fn(mapsynth_serve::IngestStats) -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !pred(ing.stats()) {
        assert!(
            std::time::Instant::now() < deadline,
            "ingestor did not reach expected state: {:?}",
            ing.stats()
        );
        std::thread::yield_now();
    }
}

/// Scripted deterministic fault plan for tests.
#[derive(Default)]
struct ScriptedFaults {
    /// Stream positions whose apply is sabotaged with an induced panic.
    sabotage: HashSet<u64>,
    /// publish idx → number of leading attempts that fail.
    publish_failures: HashMap<u64, u32>,
}

impl FaultInjector for ScriptedFaults {
    fn sabotage_apply(&mut self, seq: u64) -> bool {
        self.sabotage.contains(&seq)
    }
    fn fail_publish(&mut self, publish_idx: u64, attempt: u32) -> bool {
        attempt
            < self
                .publish_failures
                .get(&publish_idx)
                .copied()
                .unwrap_or(0)
    }
}

#[test]
fn clean_stream_applies_compacts_and_publishes() {
    let (corpus, session, keys) = fixture(6);
    let service = Arc::new(MappingService::new());
    let cfg = IngestorConfig {
        publish_every: 2,
        ..fast_cfg()
    };
    let ing = DeltaIngestor::spawn(
        session,
        corpus,
        &keys,
        Arc::clone(&service),
        cfg,
        Box::new(NoFaults),
    )
    .expect("ingestor config is valid");

    // Patch, add, then enough removals to push the garbage fraction
    // over the compaction threshold — the key map must survive the
    // renumbering (the final patch addresses a key that only resolves
    // if the remap tracked it through compaction).
    ing.submit(DeltaRequest {
        patches: vec![patch(100, &[("Algeria", "DZA")], &[("Algeria", "ALG")])],
        ..Default::default()
    });
    ing.submit(DeltaRequest {
        add: vec![add_table(200, "fresh.org", &ROWS)],
        ..Default::default()
    });
    ing.submit(DeltaRequest {
        remove: vec![101, 102, 103],
        ..Default::default()
    });
    ing.submit(DeltaRequest {
        patches: vec![patch(105, &[("Greece", "GRC")], &[("Greece", "GRE")])],
        ..Default::default()
    });

    let outcome = ing.shutdown();
    assert_eq!(outcome.stats.submitted, 4);
    assert_eq!(outcome.stats.accepted, 4);
    assert_eq!(outcome.stats.rejected, 0);
    assert!(outcome.quarantine.is_empty());
    assert!(
        outcome.stats.compactions >= 1,
        "removing half the corpus must trigger a compaction pass"
    );
    assert!(outcome.stats.publishes >= 2);
    assert_eq!(service.version(), outcome.stats.publishes);
    assert!(!service.snapshot().is_empty());
    assert_matches_fresh(&outcome.session, &outcome.corpus);
}

#[test]
fn poisoned_deltas_are_quarantined_and_rolled_back() {
    let (corpus, session, keys) = fixture(4);
    let service = Arc::new(MappingService::new());
    let ing = DeltaIngestor::spawn(
        session,
        corpus,
        &keys,
        Arc::clone(&service),
        fast_cfg(),
        Box::new(NoFaults),
    )
    .expect("ingestor config is valid");

    // seq 0: good patch.
    ing.submit(DeltaRequest {
        patches: vec![patch(100, &[("Algeria", "DZA")], &[("Algeria", "ALG")])],
        ..Default::default()
    });
    // seq 1: unknown removal key.
    ing.submit(DeltaRequest {
        remove: vec![999],
        ..Default::default()
    });
    // seq 2: duplicate add key (100 is live).
    ing.submit(DeltaRequest {
        add: vec![add_table(100, "dup.org", &ROWS)],
        ..Default::default()
    });
    // seq 3: patch deleting a row the table does not have — and
    // bundled with an add + a second (valid) patch, all of which must
    // roll back together.
    ing.submit(DeltaRequest {
        add: vec![add_table(300, "doomed.org", &ROWS)],
        patches: vec![
            patch(101, &[("Albania", "ALB")], &[("Albania", "AL")]),
            patch(102, &[("Atlantis", "ATL")], &[("Atlantis", "AT")]),
        ],
        ..Default::default()
    });
    // seq 4: patch + removal of the same key in one delta.
    ing.submit(DeltaRequest {
        remove: vec![103],
        patches: vec![patch(103, &[("Greece", "GRC")], &[("Greece", "GRE")])],
        ..Default::default()
    });
    // seq 5: empty patch.
    ing.submit(DeltaRequest {
        patches: vec![patch(101, &[], &[])],
        ..Default::default()
    });
    // seq 6: good add — the stream continues past every rejection.
    ing.submit(DeltaRequest {
        add: vec![add_table(400, "tail.org", &ROWS)],
        ..Default::default()
    });

    let outcome = ing.shutdown();
    assert_eq!(outcome.stats.submitted, 7);
    assert_eq!(outcome.stats.accepted, 2);
    assert_eq!(outcome.stats.rejected, 5);
    assert_eq!(outcome.stats.quarantined, 5);

    let q = &outcome.quarantine;
    assert_eq!(q.len(), 5);
    assert_eq!(
        q.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![1, 2, 3, 4, 5],
        "quarantine records exact stream positions"
    );
    assert_eq!(q[0].error, IngestError::UnknownKey { key: 999 });
    assert_eq!(q[1].error, IngestError::DuplicateKey { key: 100 });
    assert!(
        matches!(
            q[2].error,
            IngestError::Patch(RowPatchError::MissingRow { .. })
        ),
        "got {:?}",
        q[2].error
    );
    assert!(
        matches!(
            q[3].error,
            IngestError::Delta(DeltaError::PatchAndRemoveSameDelta { .. })
        ),
        "got {:?}",
        q[3].error
    );
    assert!(
        matches!(
            q[4].error,
            IngestError::Delta(DeltaError::EmptyPatch { .. })
        ),
        "got {:?}",
        q[4].error
    );
    // The poisoned request rides along for repair/replay.
    assert_eq!(q[2].request.add.len(), 1);
    assert_eq!(q[2].request.patches.len(), 2);

    // Rollback proof: the surviving state is exactly the accepted
    // deltas (seq 0 and seq 6) — no half-applied adds or patches.
    assert_matches_fresh(&outcome.session, &outcome.corpus);
    let live = outcome.session.live_corpus(&outcome.corpus);
    assert_eq!(live.len(), 5, "4 initial tables + the one accepted add");
}

#[test]
fn induced_apply_panics_are_contained_and_replayable() {
    let (corpus, session, keys) = fixture(4);
    let service = Arc::new(MappingService::new());
    let faults = ScriptedFaults {
        sabotage: [1u64, 3].into_iter().collect(),
        ..Default::default()
    };
    let ing = DeltaIngestor::spawn(
        session,
        corpus,
        &keys,
        Arc::clone(&service),
        fast_cfg(),
        Box::new(faults),
    )
    .expect("ingestor config is valid");

    for i in 0..5u64 {
        ing.submit(DeltaRequest {
            add: vec![add_table(500 + i, &format!("gen-{i}.org"), &ROWS)],
            ..Default::default()
        });
    }
    wait_until(&ing, |s| s.accepted + s.rejected == 5);
    assert_eq!(ing.stats().accepted, 3);
    assert_eq!(ing.stats().rejected, 2);

    // Drain mid-stream, then replay the sabotaged requests verbatim —
    // nothing about them was wrong, so the replay (no longer
    // sabotaged: seqs 5 and 6) must be accepted.
    let drained = ing.drain_quarantine();
    assert_eq!(drained.len(), 2);
    for entry in &drained {
        match &entry.error {
            IngestError::Delta(DeltaError::ApplyPanicked { message }) => {
                assert_eq!(message, INDUCED_PANIC_MESSAGE);
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
        ing.submit(entry.request.clone());
    }
    wait_until(&ing, |s| s.accepted == 5);
    assert!(ing.quarantined().is_empty(), "drain took ownership");

    let outcome = ing.shutdown();
    assert_eq!(outcome.stats.accepted, 5);
    assert_eq!(outcome.stats.rejected, 2);
    assert_eq!(outcome.stats.quarantined, 0);
    assert_matches_fresh(&outcome.session, &outcome.corpus);
    assert_eq!(outcome.session.live_corpus(&outcome.corpus).len(), 9);
}

#[test]
fn publish_failures_retry_then_abandon_without_torn_serving() {
    let (corpus, session, keys) = fixture(4);
    let service = Arc::new(MappingService::new());
    let faults = ScriptedFaults {
        // Publish 0: one transient failure, then success on retry.
        // Publish 1: fails all 3 attempts — abandoned.
        publish_failures: [(0u64, 1u32), (1, 3)].into_iter().collect(),
        ..Default::default()
    };
    let cfg = IngestorConfig {
        publish_every: 1,
        max_publish_attempts: 3,
        ..fast_cfg()
    };
    let ing = DeltaIngestor::spawn(
        session,
        corpus,
        &keys,
        Arc::clone(&service),
        cfg,
        Box::new(faults),
    )
    .expect("ingestor config is valid");

    ing.submit(DeltaRequest {
        add: vec![add_table(600, "first.org", &ROWS)],
        ..Default::default()
    });
    wait_until(&ing, |s| s.publishes == 1);
    assert_eq!(ing.stats().publish_retries, 1);
    let good_version = service.version();
    assert_eq!(good_version, 1);
    let good_snapshot = service.snapshot();

    ing.submit(DeltaRequest {
        add: vec![add_table(601, "second.org", &ROWS)],
        ..Default::default()
    });
    wait_until(&ing, |s| s.publishes_abandoned == 1);
    // Graceful degradation: the abandoned publish left the served
    // snapshot on the last good version — stale, never torn/absent.
    assert_eq!(service.version(), good_version);
    assert!(Arc::ptr_eq(&good_snapshot, &service.snapshot()));

    // The accepted delta was not lost: the shutdown tail publish
    // (publish idx 2, unsabotaged) carries the cumulative state.
    let outcome = ing.shutdown();
    assert_eq!(outcome.stats.accepted, 2);
    assert_eq!(outcome.stats.publishes, 2);
    assert_eq!(outcome.stats.publish_retries, 3);
    assert_eq!(outcome.stats.publishes_abandoned, 1);
    assert_eq!(service.version(), 2);
    assert_matches_fresh(&outcome.session, &outcome.corpus);
}

#[test]
fn quarantine_cap_evicts_oldest_and_counts() {
    let (corpus, session, keys) = fixture(2);
    let service = Arc::new(MappingService::new());
    let cfg = IngestorConfig {
        quarantine_cap: 2,
        ..fast_cfg()
    };
    let ing = DeltaIngestor::spawn(
        session,
        corpus,
        &keys,
        Arc::clone(&service),
        cfg,
        Box::new(NoFaults),
    )
    .expect("ingestor config is valid");

    // Five poisoned deltas (unknown removal keys): all rejected, only
    // the newest two survive in quarantine.
    for i in 0..5u64 {
        ing.submit(DeltaRequest {
            remove: vec![900 + i],
            ..Default::default()
        });
    }
    let outcome = ing.shutdown();
    assert_eq!(outcome.stats.rejected, 5);
    // `quarantined` gauges what is *held*, capped at 2.
    assert_eq!(outcome.stats.quarantined, 2);
    assert_eq!(outcome.stats.quarantine_evicted, 3);
    assert_eq!(
        outcome.quarantine.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![3, 4],
        "drop-oldest keeps the newest entries"
    );
}

#[test]
fn invalid_configs_are_refused_at_spawn() {
    let cases: Vec<(IngestorConfig, IngestorConfigError)> = vec![
        (
            IngestorConfig {
                queue_depth: 0,
                ..fast_cfg()
            },
            IngestorConfigError::ZeroQueueDepth,
        ),
        (
            IngestorConfig {
                publish_every: 0,
                ..fast_cfg()
            },
            IngestorConfigError::ZeroPublishEvery,
        ),
        (
            IngestorConfig {
                max_publish_attempts: 0,
                ..fast_cfg()
            },
            IngestorConfigError::ZeroPublishAttempts,
        ),
        (
            IngestorConfig {
                retry_base: Duration::from_millis(10),
                retry_cap: Duration::from_millis(1),
                ..fast_cfg()
            },
            IngestorConfigError::RetryCapBelowBase {
                base: Duration::from_millis(10),
                cap: Duration::from_millis(1),
            },
        ),
    ];
    for (cfg, expected) in cases {
        let (corpus, session, keys) = fixture(1);
        let service = Arc::new(MappingService::new());
        match DeltaIngestor::spawn(
            session,
            corpus,
            &keys,
            Arc::clone(&service),
            cfg,
            Box::new(NoFaults),
        ) {
            Err(e) => assert_eq!(e, expected),
            Ok(_) => panic!("invalid config accepted: expected {expected:?}"),
        }
        // Refusal happens before any worker spawns or snapshot publishes.
        assert_eq!(service.version(), 0);
    }
}
