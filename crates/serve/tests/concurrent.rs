//! Stress test for the publish/lookup path: reader threads hammer the
//! service while a writer publishes a stream of snapshot versions.
//! Readers must only ever observe *complete* versions — every key a
//! version claims to serve answers, with that version's value — and
//! the served version id must never move backwards.

use mapsynth_serve::{IndexSnapshot, MappingService, SnapshotBuilder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Keys per version-unit; version `n` serves `n * KEYS_PER_UNIT` keys.
const KEYS_PER_UNIT: usize = 40;
/// Versions the writer publishes.
const VERSIONS: u64 = 25;
/// Reader threads.
const READERS: usize = 4;

/// Version `n`'s payload: a marker pair recording `n`, plus
/// `n * KEYS_PER_UNIT` keys whose value embeds `n`. A torn or
/// partially built snapshot would break the count or the embedded
/// version.
fn make_snapshot(n: u64) -> IndexSnapshot {
    let mut pairs: Vec<(String, String)> = vec![("marker".into(), format!("gen {n}"))];
    for i in 0..(n as usize * KEYS_PER_UNIT) {
        pairs.push((format!("key {i}"), format!("val {i} gen {n}")));
    }
    let mut b = SnapshotBuilder::with_shards(8);
    b.add_raw(Some(format!("gen-{n}")), &pairs);
    b.build()
}

/// Assert `snap` is a complete, internally consistent version.
/// Returns the generation it serves (0 = the initial empty snapshot).
fn check_complete(snap: &IndexSnapshot) -> u64 {
    let Some(marker) = snap.lookup("marker") else {
        assert!(snap.is_empty(), "non-empty snapshot lost its marker");
        return 0;
    };
    let gen: u64 = marker
        .forward(0)
        .expect("marker is a left value")
        .strip_prefix("gen ")
        .expect("marker format")
        .parse()
        .expect("marker generation");
    // The generation recorded in the data matches the published
    // version id (the writer is the only publisher).
    assert_eq!(gen, snap.version(), "data generation vs version id");
    let keys = gen as usize * KEYS_PER_UNIT;
    // marker + keys lefts + distinct right values (all rights are
    // distinct strings, and no right collides with a left).
    assert_eq!(
        snap.value_count(),
        1 + 1 + 2 * keys,
        "gen {gen} snapshot incomplete"
    );
    // Spot-check every 7th key through the batch path, all through
    // the scalar path on small generations.
    let probe: Vec<String> = (0..keys).step_by(7).map(|i| format!("key {i}")).collect();
    let hits = snap.lookup_many_norm(&probe);
    for (j, hit) in hits.iter().enumerate() {
        let i = j * 7;
        let expect = format!("val {i} gen {gen}");
        let hit = hit.unwrap_or_else(|| panic!("gen {gen}: key {i} missing"));
        assert_eq!(hit.forward(0), Some(expect.as_str()), "gen {gen} key {i}");
    }
    gen
}

#[test]
fn readers_only_observe_complete_versions() {
    let service = Arc::new(MappingService::new());
    let done = Arc::new(AtomicBool::new(false));
    let observations = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for _ in 0..READERS {
            let service = Arc::clone(&service);
            let done = Arc::clone(&done);
            let observations = Arc::clone(&observations);
            s.spawn(move || {
                let mut last_gen = 0u64;
                let mut seen = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = service.snapshot();
                    let gen = check_complete(&snap);
                    assert!(
                        gen >= last_gen,
                        "served version went backwards: {last_gen} -> {gen}"
                    );
                    last_gen = gen;
                    seen += 1;
                }
                // One more read after the writer finished: must be the
                // final version. Counted too, so a reader that spawned
                // after the writer finished still observes ≥ 1.
                let final_gen = check_complete(&service.snapshot());
                assert_eq!(final_gen, VERSIONS, "final version served");
                seen += 1;
                observations.fetch_add(seen, Ordering::Relaxed);
            });
        }

        // Writer: build each version off to the side, publish, repeat.
        for n in 1..=VERSIONS {
            let assigned = service.publish(make_snapshot(n));
            assert_eq!(assigned, n, "publish ids are sequential");
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(service.version(), VERSIONS);
    assert!(
        observations.load(Ordering::Relaxed) >= READERS as u64,
        "every reader observed at least one snapshot"
    );
}

/// Concurrent publishers must serialize so installs happen in version
/// order — readers never see the served version move backwards even
/// with several writers racing.
#[test]
fn concurrent_publishers_install_in_version_order() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 8;
    let service = Arc::new(MappingService::new());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for _ in 0..2 {
            let service = Arc::clone(&service);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut last = 0u64;
                while !done.load(Ordering::Acquire) {
                    let v = service.snapshot().version();
                    assert!(v >= last, "served version went backwards: {last} -> {v}");
                    last = v;
                }
            });
        }
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let service = Arc::clone(&service);
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        let mut b = SnapshotBuilder::with_shards(2);
                        b.add_raw(None, &[(format!("w{w} i{i}"), "x".into())]);
                        service.publish(b.build());
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer panicked");
        }
        done.store(true, Ordering::Release);
    });

    // All version ids were assigned; the final served snapshot is the
    // last-installed, which serialization forces to be the highest.
    assert_eq!(service.version(), WRITERS * PER_WRITER);
}
