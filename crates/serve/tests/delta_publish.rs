//! Incremental snapshot publishing: `publish_delta` must serve
//! exactly what a full rebuild over the same mappings serves, while
//! actually reusing untouched shards — and stay consistent under
//! concurrent readers.

use mapsynth::values::ValueSpace;
use mapsynth::SynthesizedMapping;
use mapsynth_serve::{MappingService, SnapshotBuilder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A synthesized-mapping fixture over its own little value space.
fn mapping(prefix: &str, n_pairs: usize, domains: usize, tables: usize) -> SynthesizedMapping {
    let strings: Vec<String> = (0..n_pairs)
        .flat_map(|i| [format!("{prefix} left {i}"), format!("{prefix} right {i}")])
        .collect();
    let space = ValueSpace::from_strings(strings);
    let pair_ids = (0..n_pairs as u32)
        .map(|i| {
            (
                mapsynth::values::NormId(2 * i),
                mapsynth::values::NormId(2 * i + 1),
            )
        })
        .collect();
    SynthesizedMapping::from_parts(
        space,
        pair_ids,
        (0..tables as u32).collect(),
        domains,
        tables,
    )
}

/// Every (left → right) translation a snapshot serves, with the
/// mapping identified by *content* (its meta + first pair) rather
/// than by id — delta publishes keep ids stable while full rebuilds
/// renumber.
fn observable(
    snap: &mapsynth_serve::IndexSnapshot,
    mappings: &[SynthesizedMapping],
) -> Vec<(String, String, usize, usize)> {
    let mut out = Vec::new();
    for m in mappings {
        for (l, r) in m.pair_strs() {
            let hit = snap.lookup_norm(l).expect("served left value");
            let mi = *hit
                .mappings()
                .iter()
                .find(|&&mi| {
                    snap.meta(mi).pairs == m.len()
                        && snap.meta(mi).domains == m.domains
                        && hit.forward(mi) == Some(r)
                })
                .expect("a live mapping serves this pair");
            assert!(snap.is_live(mi));
            // Reverse direction too.
            let rhit = snap.lookup_norm(r).expect("served right value");
            assert!(rhit
                .reverse(mi)
                .expect("right side")
                .contains(&l.to_string()));
            out.push((l.to_string(), r.to_string(), m.domains, m.source_tables));
        }
    }
    out.sort();
    out
}

#[test]
fn delta_publish_equals_full_rebuild() {
    let gen0: Vec<SynthesizedMapping> = vec![
        mapping("alpha", 6, 3, 5),
        mapping("beta", 4, 2, 2),
        mapping("gamma", 9, 7, 12),
        mapping("delta", 3, 1, 1),
    ];
    let service = MappingService::new();
    service.publish(SnapshotBuilder::from_synthesized(&gen0).build());

    // Gen 1: drop beta, keep alpha/gamma/delta, add two new mappings.
    let gen1: Vec<SynthesizedMapping> = vec![
        mapping("alpha", 6, 3, 5),
        mapping("gamma", 9, 7, 12),
        mapping("delta", 3, 1, 1),
        mapping("epsilon", 5, 4, 4),
        mapping("zeta", 2, 2, 2),
    ];
    let (version, stats) = service.publish_delta(&gen1);
    assert_eq!(version, 2);
    assert_eq!(stats.added, 2);
    assert_eq!(stats.removed, 1);
    assert_eq!(stats.unchanged, 3);
    assert!(
        stats.rebuilt_shards < stats.total_shards,
        "untouched shards must be shared, not copied ({}/{} rebuilt)",
        stats.rebuilt_shards,
        stats.total_shards
    );

    let incremental = service.snapshot();
    assert_eq!(incremental.mapping_count(), 5);
    // Retired content is gone.
    assert!(incremental.lookup_norm("beta left 0").is_none());

    let rebuilt = SnapshotBuilder::from_synthesized(&gen1).build();
    assert_eq!(
        observable(&incremental, &gen1),
        observable(&rebuilt, &gen1),
        "delta-published snapshot must serve exactly what a full rebuild serves"
    );

    // A second delta composes (epsilon mutates: meta changes identity).
    let gen2: Vec<SynthesizedMapping> = vec![
        mapping("alpha", 6, 3, 5),
        mapping("gamma", 9, 7, 12),
        mapping("epsilon", 5, 6, 6),
        mapping("zeta", 2, 2, 2),
    ];
    let (version, stats) = service.publish_delta(&gen2);
    assert_eq!(version, 3);
    assert_eq!(stats.removed, 2); // delta + old epsilon
    assert_eq!(stats.added, 1); // new epsilon
    let incremental = service.snapshot();
    let rebuilt = SnapshotBuilder::from_synthesized(&gen2).build();
    assert_eq!(observable(&incremental, &gen2), observable(&rebuilt, &gen2));

    // Rollback still works across delta publishes.
    assert_eq!(service.rollback(), Some(2));
    assert_eq!(service.snapshot().mapping_count(), 5);
}

#[test]
fn unchanged_set_shares_every_shard() {
    let gen: Vec<SynthesizedMapping> = vec![mapping("alpha", 6, 3, 5), mapping("beta", 4, 2, 2)];
    let service = MappingService::new();
    service.publish(SnapshotBuilder::from_synthesized(&gen).build());
    let (version, stats) = service.publish_delta(&gen);
    assert_eq!(version, 2);
    assert_eq!(
        (
            stats.added,
            stats.removed,
            stats.unchanged,
            stats.rebuilt_shards
        ),
        (0, 0, 2, 0),
        "identical mapping set must rebuild nothing"
    );
}

/// End-to-end row-granular publishing: a synthesis session evolving
/// through row patches feeds `publish_delta`, and the served content
/// always equals a full rebuild over a fresh session's output —
/// including across a session compaction, which must not perturb the
/// served snapshot at all (stable mappings stay verbatim).
#[test]
fn session_row_patches_flow_through_publish_delta() {
    use mapsynth::delta::CorpusDelta;
    use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
    use mapsynth_corpus::{Corpus, RowPatch, TableId};

    let rows: [(&str, &str); 6] = [
        ("Afghanistan", "AFG"),
        ("Albania", "ALB"),
        ("Algeria", "DZA"),
        ("Germany", "DEU"),
        ("Netherlands", "NLD"),
        ("Greece", "GRC"),
    ];
    let mut corpus = Corpus::new();
    for i in 0..6 {
        let d = corpus.domain(&format!("iso-{i}.org"));
        let (l, r): (Vec<&str>, Vec<&str>) = rows.iter().cloned().unzip();
        corpus.push_table(d, vec![(Some("country"), l), (Some("code"), r)]);
    }
    let mut session = SynthesisSession::new(PipelineConfig::default());
    session.prepare(&corpus);
    let cfg = session.config().synthesis;

    let service = MappingService::new();
    let synthesized = session.synthesize(&cfg, Resolver::Algorithm4).mappings;
    service.publish(SnapshotBuilder::from_synthesized(&synthesized).build());

    let check_serves_fresh = |service: &MappingService, session: &SynthesisSession| {
        let mappings = session.synthesize(&cfg, Resolver::Algorithm4).mappings;
        let rebuilt = SnapshotBuilder::from_synthesized(&mappings).build();
        assert_eq!(
            observable(&service.snapshot(), &mappings),
            observable(&rebuilt, &mappings),
            "served snapshot diverged from a full rebuild"
        );
    };

    // Row patch: one table switches Algeria to the IOC code — its
    // candidates are replaced in place, and the publish diff retires
    // only the mappings the edit actually changed.
    let patch = RowPatch {
        table: TableId(2),
        deleted: vec![vec!["Algeria".to_string(), "DZA".to_string()]],
        inserted: vec![vec!["Algeria".to_string(), "ALG".to_string()]],
    };
    corpus.apply_row_patch(&patch);
    let report = session
        .apply_delta(
            &corpus,
            &CorpusDelta {
                added: vec![],
                removed: vec![],
                patches: vec![patch],
            },
        )
        .expect("valid delta");
    assert_eq!(report.tables_patched, 1);
    let (version, _) =
        service.publish_delta(&session.synthesize(&cfg, Resolver::Algorithm4).mappings);
    assert_eq!(version, 2);
    check_serves_fresh(&service, &session);

    // Drop two tables, then compact the session. The synthesized
    // content is unchanged by compaction, so the follow-up publish
    // must diff to zero — renumbering never leaks into serving.
    session
        .apply_delta(
            &corpus,
            &CorpusDelta {
                added: vec![],
                removed: vec![TableId(0), TableId(4)],
                patches: vec![],
            },
        )
        .expect("valid delta");
    let (_, _) = service.publish_delta(&session.synthesize(&cfg, Resolver::Algorithm4).mappings);
    check_serves_fresh(&service, &session);

    session.compact(&corpus);
    let (version, stats) =
        service.publish_delta(&session.synthesize(&cfg, Resolver::Algorithm4).mappings);
    assert_eq!(version, 4);
    assert_eq!(
        (stats.added, stats.removed, stats.rebuilt_shards),
        (0, 0, 0),
        "compaction must not change served content"
    );
    check_serves_fresh(&service, &session);
}

/// The serve stress satellite: a writer stream of `publish_delta`
/// calls interleaved with concurrent readers. Readers must only ever
/// observe monotone versions and *complete* snapshots — every
/// generation's sentinel mapping fully answers, and exactly one
/// generation is served per snapshot.
#[test]
fn delta_publishes_stay_consistent_under_concurrent_readers() {
    const GENERATIONS: u64 = 30;
    const READERS: usize = 4;
    /// Stable mappings present in every generation.
    fn stable() -> Vec<SynthesizedMapping> {
        vec![mapping("stable-a", 8, 3, 3), mapping("stable-b", 5, 2, 2)]
    }
    /// Generation `g`'s churn: a sentinel mapping whose pairs embed `g`.
    fn churn(g: u64) -> SynthesizedMapping {
        let strings: Vec<String> = (0..6)
            .flat_map(|i| [format!("probe {i}"), format!("gen {g} val {i}")])
            .collect();
        let space = ValueSpace::from_strings(strings);
        let pair_ids = (0..6u32)
            .map(|i| {
                (
                    mapsynth::values::NormId(2 * i),
                    mapsynth::values::NormId(2 * i + 1),
                )
            })
            .collect();
        SynthesizedMapping::from_parts(space, pair_ids, vec![0], 1, 1)
    }

    let service = Arc::new(MappingService::new());
    let mut gen0 = stable();
    gen0.push(churn(0));
    service.publish(SnapshotBuilder::from_synthesized(&gen0).build());

    let stop = Arc::new(AtomicBool::new(false));
    let max_seen = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..READERS {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let max_seen = Arc::clone(&max_seen);
            s.spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    let v = snap.version();
                    assert!(v >= last, "version moved backwards: {last} -> {v}");
                    last = v;
                    max_seen.fetch_max(v, Ordering::Relaxed);

                    // Completeness: the stable mappings always answer…
                    let hit = snap.lookup_norm("stable-a left 0").expect("stable mapping");
                    let mi = hit.mappings()[0];
                    assert_eq!(hit.forward(mi), Some("stable-a right 0"));
                    // …and exactly one churn generation is served, in
                    // full, across all six probe keys.
                    let probes: Vec<String> = (0..6).map(|i| format!("probe {i}")).collect();
                    let hits = snap.lookup_many_norm(&probes);
                    let mut gens: Vec<String> = hits
                        .iter()
                        .enumerate()
                        .map(|(i, h)| {
                            let h = h.expect("probe key served");
                            let m = h.mappings()[0];
                            let val = h.forward(m).expect("probe forward");
                            let suffix = format!(" val {i}");
                            val.strip_suffix(&suffix)
                                .unwrap_or_else(|| panic!("unexpected probe value {val}"))
                                .to_string()
                        })
                        .collect();
                    gens.dedup();
                    assert_eq!(gens.len(), 1, "torn snapshot: mixed generations {gens:?}");
                }
            });
        }

        // Writer: a delta per generation (retire the old sentinel, add
        // the next one; the stable mappings must never be rebuilt).
        // After each publish, wait until some reader has observed the
        // new version before publishing the next — without this the
        // writer finishes all generations before the readers' first
        // snapshot (publishes take microseconds in release builds) and
        // the stream would go unobserved.
        for g in 1..=GENERATIONS {
            let mut set = stable();
            set.push(churn(g));
            let (version, stats) = service.publish_delta(&set);
            assert_eq!(stats.unchanged, 2, "stable mappings must be kept verbatim");
            assert_eq!(stats.added, 1);
            assert_eq!(stats.removed, 1);
            while max_seen.load(Ordering::Relaxed) < version {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        max_seen.load(Ordering::Relaxed) >= GENERATIONS,
        "readers must have observed the publish stream"
    );
    // Retired id slots must not accumulate across the churn stream:
    // compaction bounds the slot table by O(live mappings), so a
    // long-lived service doesn't pay O(everything ever published) per
    // delta.
    let slots = service.snapshot().metas().len();
    assert!(
        slots <= 8,
        "retired slots must be compacted away ({slots} slots after {GENERATIONS} generations)"
    );
}
