//! Candidate extraction (paper Algorithm 1), parallelized over tables
//! — plus the incremental re-extraction machinery corpus deltas need.
//!
//! Column coherence (Equation 2) is a *global* statistic: every NPMI
//! term depends on the corpus-wide column count `N` and on posting
//! lists that any table insert/delete perturbs. A delta therefore
//! cannot simply extract the new tables — it must re-decide every old
//! column's coherence against the post-delta evidence, or incremental
//! output would diverge from a fresh run. [`ExtractionCache`] makes
//! that re-decision cheap: it keeps the [`ValueIndex`] (incrementally
//! patched) and, per column, the raw co-occurrence counts behind its
//! coherence score ([`CoherenceDetail`]), so a delta re-scores old
//! columns arithmetically — posting intersections are recomputed only
//! for value pairs the delta actually touched. Structural filters, the
//! numeric-left filter and approximate-FD checks depend on table
//! content alone and are never re-run for unchanged tables.

use crate::filters::{approx_fd_holds, column_passes, numeric_fraction};
use mapsynth_corpus::{
    coherence_from_counts, column_coherence_detailed, BinaryId, BinaryTable, CoherenceConfig,
    CoherenceDetail, CoherenceFunnel, Corpus, GlobalColId, Interner, RowPatch, Sym, Table, TableId,
    TableSource, ValueIndex,
};
use mapsynth_mapreduce::MapReduce;
use std::collections::{HashMap, HashSet};

/// Extraction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExtractionConfig {
    /// Minimum average-NPMI column coherence (Equation 2). Columns
    /// scoring below are dropped. Mixed-content columns land near −1
    /// (their values co-occur nowhere); coherent columns in *sparse*
    /// corpora still average below 0 because most value pairs have no
    /// co-occurrence evidence at all, so the threshold sits well below
    /// zero rather than at it.
    pub min_coherence: f64,
    /// Approximate-FD threshold θ (Definition 2), default 0.95.
    pub fd_theta: f64,
    /// Minimum distinct values per column.
    pub min_distinct: usize,
    /// Maximum average cell length (free-text rejection).
    pub max_avg_len: usize,
    /// Reject *left* columns that are ≥ this fraction short numerics
    /// (rank columns, years). The paper prunes numeric relationships
    /// before curation (§4.3); doing it here also keeps the candidate
    /// graph small. Set above 1.0 to disable.
    pub max_left_numeric: f64,
    /// Column-coherence sampling (Equation 2 cost control).
    pub coherence: CoherenceConfig,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self {
            min_coherence: -0.5,
            fd_theta: 0.95,
            min_distinct: 4,
            max_avg_len: 60,
            max_left_numeric: 0.8,
            coherence: CoherenceConfig::default(),
        }
    }
}

/// Counters describing what extraction did (paper: "around 78% \[of\]
/// candidates can be filtered out with these methods").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExtractionStats {
    /// Tables scanned.
    pub tables: usize,
    /// Columns scanned.
    pub columns: usize,
    /// Columns dropped by structural checks (distinct count, length).
    pub columns_structural: usize,
    /// Columns dropped by PMI coherence.
    pub columns_incoherent: usize,
    /// Ordered column pairs the table could produce (before any
    /// filtering): `2·C(width, 2)` per table.
    pub pairs_possible: usize,
    /// Ordered column pairs considered after column filtering.
    pub pairs_considered: usize,
    /// Pairs dropped by the FD filter.
    pub pairs_failed_fd: usize,
    /// Pairs dropped by the numeric-left filter.
    pub pairs_numeric_left: usize,
    /// Candidates emitted.
    pub candidates: usize,
}

impl ExtractionStats {
    /// Fraction of FD-checked pairs that were pruned. Always in
    /// `[0, 1]`: zero considered pairs prune nothing (0.0, not NaN),
    /// and the ratio is clamped so a caller merging stats from
    /// mismatched runs can never observe a negative rate.
    pub fn prune_rate(&self) -> f64 {
        Self::pruned_fraction(self.candidates, self.pairs_considered)
    }

    /// Fraction of *all possible* ordered column pairs pruned by the
    /// combined column + FD filters — the paper's "around 78% \[of\]
    /// candidates can be filtered out with these methods". Same
    /// `[0, 1]` guarantees as [`prune_rate`](Self::prune_rate).
    pub fn total_prune_rate(&self) -> f64 {
        Self::pruned_fraction(self.candidates, self.pairs_possible)
    }

    fn pruned_fraction(kept: usize, of: usize) -> f64 {
        if of == 0 {
            return 0.0;
        }
        (1.0 - kept as f64 / of as f64).clamp(0.0, 1.0)
    }
}

/// (left col, right col, raw row pairs) per emitted candidate.
type CandidateRows = (u16, u16, Vec<(Sym, Sym)>);

/// Cached per-column extraction state.
#[derive(Clone, Debug)]
struct ColumnCache {
    /// Passed the structural (distinct count / cell length) filters.
    /// Content-determined — never re-evaluated.
    structural: bool,
    /// Coherence evidence, present iff `structural`.
    detail: Option<CoherenceDetail>,
    /// Latest coherence score against the live corpus.
    coherence: f64,
    /// `coherence ≥ min_coherence` (the column feeds pair enumeration).
    kept: bool,
}

/// Cached per-table extraction state.
#[derive(Clone, Debug)]
struct TableCache {
    /// False once the table was removed by a delta.
    alive: bool,
    /// Global id of the table's first column (ids are never reused, so
    /// a delta-era corpus has gaps where removed tables were — the
    /// coherence arithmetic only ever uses *counts*, so gaps are
    /// harmless).
    first_gid: u32,
    cols: Vec<ColumnCache>,
    /// This table's contribution to the aggregate stats.
    stats: ExtractionStats,
    /// Emitted candidates: `(left col, right col, candidate index)`.
    /// Candidate indices address the session-wide candidate list.
    candidates: Vec<(u16, u16, u32)>,
}

/// One table's full extraction output (fresh path and delta path share
/// this single implementation, which is what makes them bit-identical).
struct TableExtraction {
    cols: Vec<ColumnCache>,
    pairs: Vec<CandidateRows>,
    stats: ExtractionStats,
    /// Sketch-filter work counters from this table's coherence scoring.
    /// Diagnostics only — kept out of [`ExtractionStats`] because the
    /// delta path re-scores old columns arithmetically (no coherence
    /// pass at all), so funnel counters legitimately differ between an
    /// incremental and a fresh run while the stats stay bit-identical.
    funnel: CoherenceFunnel,
}

fn extract_table(
    strs: &Interner,
    index: &ValueIndex,
    table: &Table,
    first_gid: u32,
    cfg: &ExtractionConfig,
) -> TableExtraction {
    let width = table.width();
    let mut stats = ExtractionStats {
        tables: 1,
        pairs_possible: width * width.saturating_sub(1),
        ..Default::default()
    };
    let mut funnel = CoherenceFunnel::default();
    // Column filtering (PMI + structural).
    let mut cols: Vec<ColumnCache> = Vec::with_capacity(width);
    let mut kept: Vec<usize> = Vec::new();
    for (ci, col) in table.columns.iter().enumerate() {
        stats.columns += 1;
        if !column_passes(strs, col, cfg.min_distinct, cfg.max_avg_len) {
            stats.columns_structural += 1;
            cols.push(ColumnCache {
                structural: false,
                detail: None,
                coherence: 0.0,
                kept: false,
            });
            continue;
        }
        let gid = GlobalColId(first_gid + ci as u32);
        let (coherence, detail) =
            column_coherence_detailed(index, &col.distinct(), cfg.coherence, gid, &mut funnel);
        let keep = coherence >= cfg.min_coherence;
        if !keep {
            stats.columns_incoherent += 1;
        } else {
            kept.push(ci);
        }
        cols.push(ColumnCache {
            structural: true,
            detail: Some(detail),
            coherence,
            kept: keep,
        });
    }
    // Ordered pair enumeration + FD filtering.
    let pairs = enumerate_pairs(strs, table, &kept, cfg, &mut stats);
    TableExtraction {
        cols,
        pairs,
        stats,
        funnel,
    }
}

/// The ordered-pair tail of per-table extraction: numeric-left and
/// approximate-FD filters over the kept columns.
fn enumerate_pairs(
    strs: &Interner,
    table: &Table,
    kept: &[usize],
    cfg: &ExtractionConfig,
    stats: &mut ExtractionStats,
) -> Vec<CandidateRows> {
    let entry = *stats;
    let mut pairs = Vec::new();
    for &i in kept {
        for &j in kept {
            if i == j {
                continue;
            }
            stats.pairs_considered += 1;
            let (left, right) = (&table.columns[i], &table.columns[j]);
            if numeric_fraction(strs, left) >= cfg.max_left_numeric {
                stats.pairs_numeric_left += 1;
                continue;
            }
            let (ok, _) = approx_fd_holds(strs, left, right, cfg.fd_theta);
            if !ok {
                stats.pairs_failed_fd += 1;
                continue;
            }
            let rows: Vec<_> = left
                .values
                .iter()
                .copied()
                .zip(right.values.iter().copied())
                .collect();
            stats.candidates += 1;
            pairs.push((i as u16, j as u16, rows));
        }
    }
    // Every considered pair lands in exactly one bucket — the prune
    // rates divide these counters, so a double- or un-counted pair
    // would silently skew them.
    debug_assert_eq!(
        stats.pairs_considered - entry.pairs_considered,
        (stats.candidates - entry.candidates)
            + (stats.pairs_numeric_left - entry.pairs_numeric_left)
            + (stats.pairs_failed_fd - entry.pairs_failed_fd),
        "pair filter buckets must partition the considered pairs"
    );
    pairs
}

/// Run candidate extraction over the corpus (paper Algorithm 1).
///
/// Returns candidates with stable ids (`BinaryId` in table order) and
/// aggregate stats. Parallelized with [`MapReduce::par_map`]; output is
/// deterministic.
pub fn extract_candidates(
    corpus: &Corpus,
    cfg: &ExtractionConfig,
    mr: &MapReduce,
) -> (Vec<BinaryTable>, ExtractionStats) {
    let (candidates, stats, _) = extract_candidates_cached(corpus, cfg, mr);
    (candidates, stats)
}

/// [`extract_candidates`] plus the [`ExtractionCache`] that lets
/// subsequent corpus deltas re-extract incrementally. The candidate
/// list and stats are identical to the plain entry point (it delegates
/// here).
pub fn extract_candidates_cached(
    corpus: &Corpus,
    cfg: &ExtractionConfig,
    mr: &MapReduce,
) -> (Vec<BinaryTable>, ExtractionStats, ExtractionCache) {
    extract_candidates_masked(corpus, &vec![true; corpus.tables.len()], cfg, mr)
}

/// [`extract_candidates_cached`] restricted to the tables `alive`
/// marks. Dead tables contribute no coherence evidence and emit no
/// candidates — the output is exactly what [`extract_candidates`]
/// produces on [`Corpus::subset`] of the live tables (modulo interner
/// ids), while keeping the *caller's* table numbering so an
/// incremental session can rebuild in place after tombstoning tables.
pub fn extract_candidates_masked(
    corpus: &Corpus,
    alive: &[bool],
    cfg: &ExtractionConfig,
    mr: &MapReduce,
) -> (Vec<BinaryTable>, ExtractionStats, ExtractionCache) {
    assert_eq!(alive.len(), corpus.tables.len());
    let index = ValueIndex::build_filtered(corpus, |tid| alive[tid.0 as usize]);

    // Global column ids are assigned in (table, column) order, across
    // dead tables too — gaps are harmless (coherence is count
    // arithmetic) and keep the id assignment delta-stable.
    let mut first_col: Vec<u32> = Vec::with_capacity(corpus.tables.len());
    let mut next = 0u32;
    for t in &corpus.tables {
        first_col.push(next);
        next += t.width() as u32;
    }

    let live: Vec<usize> = (0..corpus.tables.len()).filter(|&ti| alive[ti]).collect();
    let index_ref = &index;
    let first_ref = &first_col;
    let outputs: Vec<TableExtraction> = mr.par_map(&live, |&ti| {
        extract_table(
            &corpus.interner,
            index_ref,
            &corpus.tables[ti],
            first_ref[ti],
            cfg,
        )
    });

    let mut all = Vec::new();
    let mut stats = ExtractionStats::default();
    let mut funnel = CoherenceFunnel::default();
    let mut tables: Vec<TableCache> = (0..corpus.tables.len())
        .map(|ti| TableCache {
            alive: false,
            first_gid: first_col[ti],
            cols: Vec::new(),
            stats: ExtractionStats::default(),
            candidates: Vec::new(),
        })
        .collect();
    for (&ti, out) in live.iter().zip(outputs) {
        merge_stats(&mut stats, &out.stats);
        funnel.merge(&out.funnel);
        let table = &corpus.tables[ti];
        let mut emitted = Vec::with_capacity(out.pairs.len());
        for (i, j, rows) in out.pairs {
            let id = BinaryId(all.len() as u32);
            emitted.push((i, j, id.0));
            all.push(
                BinaryTable::new(id, table.id, table.domain, i, j, rows).with_headers(
                    table.columns[i as usize].header,
                    table.columns[j as usize].header,
                ),
            );
        }
        tables[ti] = TableCache {
            alive: true,
            first_gid: first_col[ti],
            cols: out.cols,
            stats: out.stats,
            candidates: emitted,
        };
    }
    let cache = ExtractionCache {
        index,
        tables,
        next_gid: next,
        next_candidate: all.len() as u32,
        funnel,
    };
    (all, stats, cache)
}

/// Streaming variant of [`extract_candidates_cached`]: pull tables
/// from a [`TableSource`] in bounded batches instead of borrowing a
/// materialized corpus.
///
/// Two passes over the source. Pass 1 builds the [`ValueIndex`]
/// incrementally (one batch of tables resident at a time), assigning
/// global column ids in `(table, column)` order exactly as the batch
/// path does. Pass 2 [`rewind`](TableSource::rewind)s and runs the
/// same per-table extraction the batch path runs, so candidates, stats
/// and the returned [`ExtractionCache`] are **bit-identical** to
/// [`extract_candidates_cached`] on the materialized corpus — only the
/// peak memory differs: the raw tables of at most one batch are alive
/// at any moment, while the batch path holds all of them.
///
/// `batch_tables` trades parallelism against residency; it has no
/// effect on the output.
pub fn extract_candidates_streaming<S: TableSource>(
    source: &mut S,
    cfg: &ExtractionConfig,
    mr: &MapReduce,
    batch_tables: usize,
) -> (Vec<BinaryTable>, ExtractionStats, ExtractionCache) {
    let batch_tables = batch_tables.max(1);
    let n_tables = source.table_count();

    // Pass 1: value index + global column id assignment.
    let mut index = ValueIndex::empty();
    let mut first_col: Vec<u32> = Vec::with_capacity(n_tables);
    let mut next = 0u32;
    loop {
        let batch = source.next_batch(batch_tables);
        if batch.is_empty() {
            break;
        }
        let distincts: Vec<Vec<Vec<Sym>>> =
            mr.par_map(&batch, |t| t.columns.iter().map(|c| c.distinct()).collect());
        // The source interned this batch's strings while producing it.
        index.grow_symbols(source.interner().len());
        for (t, cols) in batch.iter().zip(distincts) {
            debug_assert_eq!(
                t.id.0 as usize,
                first_col.len(),
                "table ids must be dense and ascending in yield order"
            );
            first_col.push(next);
            for (ci, distinct) in cols.into_iter().enumerate() {
                index.add_column(GlobalColId(next + ci as u32), distinct);
            }
            next += t.width() as u32;
        }
    }
    assert_eq!(
        first_col.len(),
        n_tables,
        "source yielded {} tables but table_count() promised {n_tables}",
        first_col.len(),
    );

    // Pass 2: per-table extraction against the complete index.
    source.rewind();
    let mut all = Vec::new();
    let mut stats = ExtractionStats::default();
    let mut funnel = CoherenceFunnel::default();
    let mut tables: Vec<TableCache> = Vec::with_capacity(n_tables);
    let index_ref = &index;
    let first_ref = &first_col;
    loop {
        let batch = source.next_batch(batch_tables);
        if batch.is_empty() {
            break;
        }
        let strs = source.interner();
        let outputs: Vec<TableExtraction> = mr.par_map(&batch, |t| {
            extract_table(strs, index_ref, t, first_ref[t.id.0 as usize], cfg)
        });
        for (t, out) in batch.iter().zip(outputs) {
            merge_stats(&mut stats, &out.stats);
            funnel.merge(&out.funnel);
            let mut emitted = Vec::with_capacity(out.pairs.len());
            for (i, j, rows) in out.pairs {
                let id = BinaryId(all.len() as u32);
                emitted.push((i, j, id.0));
                all.push(
                    BinaryTable::new(id, t.id, t.domain, i, j, rows)
                        .with_headers(t.columns[i as usize].header, t.columns[j as usize].header),
                );
            }
            tables.push(TableCache {
                alive: true,
                first_gid: first_ref[t.id.0 as usize],
                cols: out.cols,
                stats: out.stats,
                candidates: emitted,
            });
        }
    }
    let cache = ExtractionCache {
        index,
        tables,
        next_gid: next,
        next_candidate: all.len() as u32,
        funnel,
    };
    (all, stats, cache)
}

fn merge_stats(into: &mut ExtractionStats, from: &ExtractionStats) {
    into.tables += from.tables;
    into.columns += from.columns;
    into.columns_structural += from.columns_structural;
    into.columns_incoherent += from.columns_incoherent;
    into.pairs_possible += from.pairs_possible;
    into.pairs_considered += from.pairs_considered;
    into.pairs_failed_fd += from.pairs_failed_fd;
    into.pairs_numeric_left += from.pairs_numeric_left;
    into.candidates += from.candidates;
}

/// What a corpus delta did to the candidate set.
#[derive(Clone, Debug, Default)]
pub struct ExtractionDelta {
    /// Freshly extracted candidates of the added tables, with ids
    /// continuing after the session's existing candidate list.
    /// Meaningless when `reordered` — use
    /// [`ExtractionCache::rebuild_candidates`] instead.
    pub added: Vec<BinaryTable>,
    /// Candidate indices (into the session-wide list) tombstoned by
    /// the delta: candidates of removed tables, plus candidates of
    /// surviving tables whose column lost coherence. Meaningless when
    /// `reordered`.
    pub tombstoned: Vec<u32>,
    /// Candidates of row-patched tables that survived with *changed
    /// content*: same id, same `(left, right)` columns, new rows. When
    /// `reordered`, these candidates' cached scores are already
    /// invalidated (sentineled out of the surviving-id map that
    /// [`ExtractionCache::rebuild_candidates`] returns) and the entries
    /// here — under their **old** ids — are reporting-only.
    pub replaced: Vec<BinaryTable>,
    /// Aggregate stats over the live post-delta view — bit-identical to
    /// a fresh extraction of the post-delta corpus.
    pub stats: ExtractionStats,
    /// An old table *gained* a candidate under the post-delta
    /// coherence statistics (a borderline column crossed the
    /// threshold — any delta that grows the corpus shifts every NPMI
    /// via `N`, so this is routine for additive deltas). Gained
    /// candidates cannot be appended without breaking the candidate
    /// order a fresh run would produce, so tombstone/append patching
    /// is off the table: the caller must renumber via
    /// [`ExtractionCache::rebuild_candidates`]. The cache itself is
    /// fully advanced either way.
    pub reordered: bool,
    /// Old columns whose coherence verdict flipped.
    pub coherence_flips: usize,
    /// Old tables re-extracted because their kept-column set changed.
    pub tables_reextracted: usize,
}

/// Sentinel id of a candidate gained by a coherence flip-up: it has no
/// position in the old numbering; [`ExtractionCache::rebuild_candidates`]
/// assigns the real one.
const GAINED_CANDIDATE: u32 = u32::MAX;

/// Incremental extraction state: the live [`ValueIndex`] plus each
/// table's cached column verdicts and coherence evidence. Built by
/// [`extract_candidates_cached`]; advanced by
/// [`apply_delta`](Self::apply_delta).
#[derive(Clone)]
pub struct ExtractionCache {
    index: ValueIndex,
    tables: Vec<TableCache>,
    next_gid: u32,
    next_candidate: u32,
    /// Cumulative sketch-filter funnel over every coherence pass this
    /// cache has run (the fresh build plus each delta's re-extracted
    /// tables). Diagnostics only — never compared for bit-identity.
    funnel: CoherenceFunnel,
}

impl ExtractionCache {
    /// Live tables.
    pub fn alive_tables(&self) -> usize {
        self.tables.iter().filter(|t| t.alive).count()
    }

    /// Cumulative coherence sketch-filter counters: how many sampled
    /// value pairs were resolved by the sketch bounds alone
    /// (`sketch_rejects`) versus probed against posting lists
    /// (`list_probes`), over every coherence pass this cache has run.
    pub fn coherence_funnel(&self) -> CoherenceFunnel {
        self.funnel
    }

    /// Total columns walked so far (the next global column id) — the
    /// corpus-size component of a session's fingerprint when the
    /// corpus was streamed rather than materialized.
    pub fn total_columns(&self) -> u32 {
        self.next_gid
    }

    /// Advance the cache by one corpus delta and report the candidate
    /// changes.
    ///
    /// `added` must be the ids of tables appended to `corpus` since the
    /// cache last saw it (in order); `removed` must be live table ids;
    /// `patches` are row-granular edits whose [`RowPatch`]es were
    /// already applied to `corpus` (via [`Corpus::apply_row_patch`]) —
    /// the pre-patch column multisets are reconstructed from the
    /// post-patch corpus as `new − inserted + deleted`. The cache is
    /// fully advanced on return; when the delta flags `reordered` the
    /// caller must renumber through
    /// [`rebuild_candidates`](Self::rebuild_candidates) instead of
    /// using the tombstone/append/replace lists.
    ///
    /// # Panics
    /// On out-of-order `added` ids, unknown or dead `removed` ids, and
    /// patches that target a dead table, a table removed by the same
    /// delta, or the same table twice.
    pub fn apply_delta(
        &mut self,
        corpus: &Corpus,
        added: &[TableId],
        removed: &[TableId],
        patches: &[RowPatch],
        cfg: &ExtractionConfig,
        mr: &MapReduce,
    ) -> ExtractionDelta {
        let mut delta = ExtractionDelta::default();

        // Per-value membership in the delta's columns, as
        // `(delta column sequence id, ±1)`: the cached co-occurrence
        // counts are patched by intersecting these *tiny* lists (a
        // column pair's count changes only by the delta columns that
        // contain both values) instead of re-intersecting full posting
        // lists.
        let mut delta_cols: HashMap<mapsynth_corpus::Sym, Vec<u32>> = HashMap::new();
        let mut col_sign: Vec<i32> = Vec::new();
        let register = |delta_cols: &mut HashMap<mapsynth_corpus::Sym, Vec<u32>>,
                        col_sign: &mut Vec<i32>,
                        distinct: &[mapsynth_corpus::Sym],
                        sign: i32| {
            let seq = col_sign.len() as u32;
            col_sign.push(sign);
            for &v in distinct {
                delta_cols.entry(v).or_default().push(seq);
            }
        };

        // 1. Remove evidence of removed tables.
        for &tid in removed {
            let tc = self
                .tables
                .get_mut(tid.0 as usize)
                .expect("removed table id unknown to the extraction cache");
            assert!(tc.alive, "table {tid:?} removed twice");
            tc.alive = false;
            let table = corpus.table(tid);
            for (ci, col) in table.columns.iter().enumerate() {
                let distinct = col.distinct();
                register(&mut delta_cols, &mut col_sign, &distinct, -1);
                self.index
                    .remove_column(GlobalColId(tc.first_gid + ci as u32), distinct);
            }
            delta
                .tombstoned
                .extend(tc.candidates.iter().map(|&(_, _, idx)| idx));
            tc.candidates.clear();
        }

        // 1b. Row-patched tables: swap per-column value *membership* in
        // the index (the column keeps its gid) and register the full
        // old/new distinct sets as a −1/+1 delta-column pair. Values in
        // both sets cancel in the value counts, but registering both
        // full sets is what keeps the *pair* arithmetic exact: a pair
        // with one staying and one leaving value shares only the −1
        // pseudo-column, one staying and one entering only the +1 —
        // exactly the `[u,v ∈ new] − [u,v ∈ old]` change a fresh
        // intersection would see.
        self.index.grow_symbols(corpus.interner.len());
        let mut patched: Vec<u32> = Vec::new();
        for patch in patches {
            let tc = self
                .tables
                .get(patch.table.0 as usize)
                .expect("patched table id unknown to the extraction cache");
            assert!(tc.alive, "patched table {:?} is not live", patch.table);
            assert!(
                !removed.contains(&patch.table),
                "table {:?} both patched and removed in one delta",
                patch.table
            );
            assert!(
                !patched.contains(&patch.table.0),
                "table {:?} patched twice in one delta",
                patch.table
            );
            patched.push(patch.table.0);
            let table = corpus.table(patch.table);
            let first_gid = tc.first_gid;
            for (ci, col) in table.columns.iter().enumerate() {
                let new_distinct = col.distinct();
                let mut old_counts: HashMap<Sym, i64> = HashMap::with_capacity(col.values.len());
                for &v in &col.values {
                    *old_counts.entry(v).or_default() += 1;
                }
                for row in &patch.inserted {
                    let s = corpus
                        .interner
                        .get(&row[ci])
                        .expect("inserted value was interned by apply_row_patch");
                    *old_counts.entry(s).or_default() -= 1;
                }
                for row in &patch.deleted {
                    let s = corpus
                        .interner
                        .get(&row[ci])
                        .expect("deleted value existed in the corpus");
                    *old_counts.entry(s).or_default() += 1;
                }
                let mut old_distinct: Vec<Sym> = old_counts
                    .iter()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(&v, _)| v)
                    .collect();
                old_distinct.sort_unstable();
                let new_set: HashSet<Sym> = new_distinct.iter().copied().collect();
                let leaving: Vec<Sym> = old_distinct
                    .iter()
                    .copied()
                    .filter(|v| !new_set.contains(v))
                    .collect();
                let entering: Vec<Sym> = new_distinct
                    .iter()
                    .copied()
                    .filter(|v| old_counts.get(v).is_none_or(|&c| c <= 0))
                    .collect();
                if leaving.is_empty() && entering.is_empty() {
                    // Pure duplicate-count churn: no evidence moved.
                    continue;
                }
                self.index.patch_column(
                    GlobalColId(first_gid + ci as u32),
                    leaving.iter().copied(),
                    entering.iter().copied(),
                );
                register(&mut delta_cols, &mut col_sign, &old_distinct, -1);
                register(&mut delta_cols, &mut col_sign, &new_distinct, 1);
            }
        }

        // 2. Register added tables' evidence (fresh, never-reused gids).
        self.index.grow_symbols(corpus.interner.len());
        for &tid in added {
            assert_eq!(
                tid.0 as usize,
                self.tables.len(),
                "added table ids must be contiguous after the cached corpus"
            );
            let table = corpus.table(tid);
            let first_gid = self.next_gid;
            self.next_gid += table.width() as u32;
            for (ci, col) in table.columns.iter().enumerate() {
                let distinct = col.distinct();
                register(&mut delta_cols, &mut col_sign, &distinct, 1);
                self.index
                    .add_column(GlobalColId(first_gid + ci as u32), distinct);
            }
            self.tables.push(TableCache {
                alive: true,
                first_gid,
                cols: Vec::new(),
                stats: ExtractionStats::default(),
                candidates: Vec::new(),
            });
        }

        // 3. Re-score every live old column against the post-delta
        // evidence: counts patched arithmetically from the delta-column
        // lists, the NPMI mean recomputed from the patched counts
        // (bit-identical to a fresh gather). The per-value lists are
        // also flattened into a symbol-indexed lookup so the
        // O(samples²) pair loop probes in O(1).
        let mut touched_lists: Vec<Option<&[u32]>> = vec![None; corpus.interner.len()];
        for (sym, seqs) in &delta_cols {
            touched_lists[sym.index()] = Some(seqs.as_slice());
        }
        // Net column delta per value: Σ signs of its delta columns.
        let value_delta =
            |seqs: &[u32]| -> i64 { seqs.iter().map(|&s| col_sign[s as usize] as i64).sum() };
        // Co-occurrence delta of a value pair: Σ signs over delta
        // columns containing both (sorted-list intersection, lists are
        // at most the delta's column count long and usually tiny).
        let pair_delta = |a: &[u32], b: &[u32]| -> i64 {
            let (mut i, mut j, mut d) = (0usize, 0usize, 0i64);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        d += col_sign[a[i] as usize] as i64;
                        i += 1;
                        j += 1;
                    }
                }
            }
            d
        };
        let total = self.index.total_columns();
        // Patched tables are excluded: their own column content changed
        // (distinct sets, and with them the coherence sample lists), so
        // they are re-scored from scratch in step 4b instead of
        // arithmetically.
        let old_live: Vec<u32> = self
            .tables
            .iter()
            .enumerate()
            .take(self.tables.len() - added.len())
            .filter(|&(ti, t)| t.alive && !patched.contains(&(ti as u32)))
            .map(|(ti, _)| ti as u32)
            .collect();
        let touched_ref = &touched_lists;
        let tables_ref = &self.tables;
        // (table, column, new value_counts, new pair_counts, coherence)
        type Rescored = Vec<(u32, Vec<u32>, Vec<u32>, f64)>;
        let rescored: Vec<Rescored> = mr.par_map(&old_live, |&ti| {
            let tc = &tables_ref[ti as usize];
            let mut out = Vec::new();
            let mut lists: Vec<Option<&[u32]>> = Vec::new();
            for (ci, col) in tc.cols.iter().enumerate() {
                let Some(detail) = &col.detail else { continue };
                let mut value_counts = detail.value_counts.clone();
                lists.clear();
                let mut any = false;
                for (k, &u) in detail.samples.iter().enumerate() {
                    let l = touched_ref[u.index()];
                    lists.push(l);
                    if let Some(seqs) = l {
                        value_counts[k] = (value_counts[k] as i64 + value_delta(seqs)) as u32;
                        any = true;
                    }
                }
                let mut pair_counts = detail.pair_counts.clone();
                if any {
                    let mut k = 0usize;
                    for i in 0..detail.samples.len() {
                        for j in (i + 1)..detail.samples.len() {
                            if let (Some(a), Some(b)) = (lists[i], lists[j]) {
                                pair_counts[k] = (pair_counts[k] as i64 + pair_delta(a, b)) as u32;
                            }
                            k += 1;
                        }
                    }
                }
                let coherence = coherence_from_counts(&value_counts, &pair_counts, total);
                out.push((ci as u32, value_counts, pair_counts, coherence));
            }
            out
        });

        // 4. Apply the re-scores; re-extract tables whose kept set
        // flipped, tombstoning lost candidates and flagging `reordered`
        // on gains.
        let mut changed_tables: Vec<u32> = Vec::new();
        for (&ti, cols) in old_live.iter().zip(rescored) {
            let tc = &mut self.tables[ti as usize];
            let mut changed = false;
            for (ci, value_counts, pair_counts, coherence) in cols {
                let col = &mut tc.cols[ci as usize];
                let detail = col.detail.as_mut().expect("re-scored column has detail");
                detail.value_counts = value_counts;
                detail.pair_counts = pair_counts;
                col.coherence = coherence;
                let keep = coherence >= cfg.min_coherence;
                if keep != col.kept {
                    delta.coherence_flips += 1;
                    changed = true;
                }
                col.kept = keep;
            }
            if changed {
                changed_tables.push(ti);
            }
        }
        for ti in changed_tables {
            delta.tables_reextracted += 1;
            let tc = &mut self.tables[ti as usize];
            let table = &corpus.tables[ti as usize];
            let kept: Vec<usize> = tc
                .cols
                .iter()
                .enumerate()
                .filter(|(_, c)| c.kept)
                .map(|(ci, _)| ci)
                .collect();
            let mut stats = ExtractionStats {
                tables: 1,
                columns: tc.cols.len(),
                columns_structural: tc.cols.iter().filter(|c| !c.structural).count(),
                columns_incoherent: tc.cols.iter().filter(|c| c.structural && !c.kept).count(),
                pairs_possible: tc.cols.len() * tc.cols.len().saturating_sub(1),
                ..Default::default()
            };
            let pairs = enumerate_pairs(&corpus.interner, table, &kept, cfg, &mut stats);
            tc.stats = stats;
            let old_ids: std::collections::HashMap<(u16, u16), u32> = tc
                .candidates
                .iter()
                .map(|&(i, j, idx)| ((i, j), idx))
                .collect();
            let new_set: HashSet<(u16, u16)> = pairs.iter().map(|&(i, j, _)| (i, j)).collect();
            // Lost candidates tombstone cleanly; a *gained* candidate
            // has no place in the old numbering (a fresh run emits it
            // in table order), so it forces renumbering — recorded
            // with a sentinel id until `rebuild_candidates` assigns
            // real ones.
            delta.tombstoned.extend(
                tc.candidates
                    .iter()
                    .filter(|&&(i, j, _)| !new_set.contains(&(i, j)))
                    .map(|&(_, _, idx)| idx),
            );
            tc.candidates = pairs
                .iter()
                .map(|&(i, j, _)| {
                    let idx = old_ids.get(&(i, j)).copied().unwrap_or_else(|| {
                        delta.reordered = true;
                        GAINED_CANDIDATE
                    });
                    (i, j, idx)
                })
                .collect();
        }

        // 4b. Re-extract row-patched tables in full against the
        // post-delta evidence: structural filters, coherence samples,
        // FD checks and pair enumeration all depend on row content, so
        // nothing cached about these tables' own columns survives a
        // patch. A surviving (left, right) pair keeps its candidate id
        // with replaced rows; a lost pair tombstones; a gained pair
        // forces a renumber exactly like a coherence flip-up.
        let index_ref = &self.index;
        let tables_ref = &self.tables;
        let repatched: Vec<TableExtraction> = mr.par_map(&patched, |&ti| {
            extract_table(
                &corpus.interner,
                index_ref,
                &corpus.tables[ti as usize],
                tables_ref[ti as usize].first_gid,
                cfg,
            )
        });
        for (&ti, out) in patched.iter().zip(repatched) {
            delta.tables_reextracted += 1;
            self.funnel.merge(&out.funnel);
            let table = &corpus.tables[ti as usize];
            let tc = &mut self.tables[ti as usize];
            delta.coherence_flips += tc
                .cols
                .iter()
                .zip(&out.cols)
                .filter(|(a, b)| a.kept != b.kept)
                .count();
            let old_ids: HashMap<(u16, u16), u32> = tc
                .candidates
                .iter()
                .map(|&(i, j, idx)| ((i, j), idx))
                .collect();
            let new_set: HashSet<(u16, u16)> = out.pairs.iter().map(|&(i, j, _)| (i, j)).collect();
            delta.tombstoned.extend(
                tc.candidates
                    .iter()
                    .filter(|&&(i, j, _)| !new_set.contains(&(i, j)))
                    .map(|&(_, _, idx)| idx),
            );
            tc.cols = out.cols;
            tc.stats = out.stats;
            let mut emitted = Vec::with_capacity(out.pairs.len());
            for (i, j, rows) in out.pairs {
                match old_ids.get(&(i, j)) {
                    Some(&idx) => {
                        emitted.push((i, j, idx));
                        delta.replaced.push(
                            BinaryTable::new(BinaryId(idx), table.id, table.domain, i, j, rows)
                                .with_headers(
                                    table.columns[i as usize].header,
                                    table.columns[j as usize].header,
                                ),
                        );
                    }
                    None => {
                        delta.reordered = true;
                        emitted.push((i, j, GAINED_CANDIDATE));
                    }
                }
            }
            tc.candidates = emitted;
        }

        // 5. Extract the added tables against the post-delta evidence.
        let added_idx: Vec<u32> = added.iter().map(|t| t.0).collect();
        let index_ref = &self.index;
        let tables_ref = &self.tables;
        let extracted: Vec<TableExtraction> = mr.par_map(&added_idx, |&ti| {
            extract_table(
                &corpus.interner,
                index_ref,
                &corpus.tables[ti as usize],
                tables_ref[ti as usize].first_gid,
                cfg,
            )
        });
        for (&ti, out) in added_idx.iter().zip(extracted) {
            self.funnel.merge(&out.funnel);
            let table = &corpus.tables[ti as usize];
            let tc = &mut self.tables[ti as usize];
            tc.cols = out.cols;
            tc.stats = out.stats;
            for (i, j, rows) in out.pairs {
                let id = BinaryId(self.next_candidate);
                self.next_candidate += 1;
                tc.candidates.push((i, j, id.0));
                delta.added.push(
                    BinaryTable::new(id, table.id, table.domain, i, j, rows).with_headers(
                        table.columns[i as usize].header,
                        table.columns[j as usize].header,
                    ),
                );
            }
        }

        // 6. Aggregate stats over the live view (what a fresh run on
        // the post-delta corpus reports).
        let mut stats = ExtractionStats::default();
        for tc in self.tables.iter().filter(|t| t.alive) {
            merge_stats(&mut stats, &tc.stats);
        }
        delta.stats = stats;
        delta.tombstoned.sort_unstable();
        // A renumber rebuilds the candidate list from scratch, and the
        // surviving-id map must not carry stale scores: invalidate
        // every content-replaced candidate now (its rows are rebuilt
        // from the patched corpus by `rebuild_candidates` anyway).
        if delta.reordered {
            let ids: Vec<u32> = delta.replaced.iter().map(|c| c.id.0).collect();
            self.sentinel_candidates(&ids);
        }
        delta
    }

    /// Number of live candidates the cache currently tracks.
    pub fn live_candidates(&self) -> usize {
        self.tables
            .iter()
            .filter(|t| t.alive)
            .map(|t| t.candidates.len())
            .sum()
    }

    /// Ids of every live candidate, in live-table order. The
    /// incremental session walks these to probe how much of its
    /// value space is still referenced (the compaction trigger).
    ///
    /// # Panics
    /// If a renumber is pending (sentineled candidates have no id).
    pub fn live_candidate_ids(&self) -> Vec<u32> {
        self.tables
            .iter()
            .filter(|t| t.alive)
            .flat_map(|t| t.candidates.iter().map(|c| c.2))
            .inspect(|&id| {
                assert_ne!(
                    id, GAINED_CANDIDATE,
                    "live_candidate_ids with a renumber pending"
                )
            })
            .collect()
    }

    /// Invalidate the given live candidates ahead of a renumber: their
    /// entries are replaced by the gained-candidate sentinel, so
    /// [`rebuild_candidates`](Self::rebuild_candidates) assigns them
    /// fresh ids and *excludes* them from the surviving-id map —
    /// downstream caches must re-derive their state. The incremental
    /// session uses this when it detects a content change the
    /// extraction layer cannot see (a replaced candidate whose
    /// normalized projection newly became usable).
    pub fn sentinel_candidates(&mut self, ids: &[u32]) {
        if ids.is_empty() {
            return;
        }
        let set: HashSet<u32> = ids.iter().copied().collect();
        let mut found = 0usize;
        for tc in self.tables.iter_mut().filter(|t| t.alive) {
            for c in tc.candidates.iter_mut() {
                if c.2 != GAINED_CANDIDATE && set.contains(&c.2) {
                    c.2 = GAINED_CANDIDATE;
                    found += 1;
                }
            }
        }
        assert_eq!(
            found,
            set.len(),
            "sentinel_candidates: some ids are unknown, dead, or already sentineled"
        );
    }

    /// Drop tombstoned tables and renumber the surviving candidates
    /// densely, in place — the extraction half of a session compaction.
    /// Table positions shrink to the live tables in order (matching
    /// [`Corpus::retain_interned`] of the live set); candidate ids are
    /// renumbered in `(table, pair)` order, which equals ascending old
    /// id order, so the returned old → new id map is monotone. Global
    /// column ids are *not* renumbered: dead gids already carry no
    /// postings, the coherence arithmetic only ever uses counts, and
    /// keeping them avoids rewriting every posting list.
    ///
    /// # Panics
    /// If called while a `reordered` delta is pending (sentineled
    /// candidates present).
    pub fn compact(&mut self) -> Vec<(u32, u32)> {
        self.tables.retain(|t| t.alive);
        let mut id_map = Vec::new();
        let mut next = 0u32;
        for tc in &mut self.tables {
            for c in tc.candidates.iter_mut() {
                assert_ne!(
                    c.2, GAINED_CANDIDATE,
                    "compact called with a renumber pending"
                );
                id_map.push((c.2, next));
                c.2 = next;
                next += 1;
            }
        }
        debug_assert!(
            id_map.windows(2).all(|w| w[0].0 < w[1].0),
            "live candidate ids must ascend in (table, pair) order"
        );
        self.next_candidate = next;
        id_map
    }

    /// Reassemble the full candidate list from the cache in fresh
    /// `(table, column-pair)` order, renumbering candidate ids densely
    /// — the renumber step of a `reordered` delta. The list (and its
    /// stats) is exactly what [`extract_candidates`] produces on the
    /// live post-delta corpus.
    ///
    /// Returns the candidates, aggregate stats, and the old → new id
    /// mapping of surviving candidates (ascending in both components;
    /// gained candidates appear only under new ids). The cache's ids
    /// are rewritten to the new numbering.
    pub fn rebuild_candidates(
        &mut self,
        corpus: &Corpus,
    ) -> (Vec<BinaryTable>, ExtractionStats, Vec<(u32, u32)>) {
        let mut all = Vec::new();
        let mut stats = ExtractionStats::default();
        let mut id_map = Vec::new();
        for ti in 0..self.tables.len() {
            let tc = &mut self.tables[ti];
            if !tc.alive {
                continue;
            }
            merge_stats(&mut stats, &tc.stats);
            let table = &corpus.tables[ti];
            for (i, j, old) in tc.candidates.iter_mut() {
                let new_id = all.len() as u32;
                if *old != GAINED_CANDIDATE {
                    id_map.push((*old, new_id));
                }
                *old = new_id;
                let (left, right) = (&table.columns[*i as usize], &table.columns[*j as usize]);
                let rows: Vec<_> = left
                    .values
                    .iter()
                    .copied()
                    .zip(right.values.iter().copied())
                    .collect();
                all.push(
                    BinaryTable::new(BinaryId(new_id), table.id, table.domain, *i, *j, rows)
                        .with_headers(left.header, right.header),
                );
            }
        }
        self.next_candidate = all.len() as u32;
        (all, stats, id_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth_gen::procedural::ProceduralConfig;
    use mapsynth_gen::{generate_web, WebConfig};

    fn small_corpus() -> mapsynth_gen::webgen::WebCorpus {
        generate_web(&WebConfig {
            tables: 250,
            domains: 30,
            procedural: ProceduralConfig {
                families: 8,
                temporal_families: 1,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn extracts_candidates_and_prunes() {
        let wc = small_corpus();
        let mr = MapReduce::new(4);
        let (cands, stats) = extract_candidates(&wc.corpus, &ExtractionConfig::default(), &mr);
        assert!(!cands.is_empty());
        assert_eq!(stats.tables, wc.corpus.len());
        assert!(
            stats.total_prune_rate() > 0.5,
            "total prune rate {:.2} too low (paper ~0.78)",
            stats.total_prune_rate()
        );
        // Every candidate has both orientations possible but only FD-
        // satisfying ones; ids are sequential.
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.id.0 as usize, i);
            assert!(c.len() >= 2);
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let wc = small_corpus();
        let (a, _) =
            extract_candidates(&wc.corpus, &ExtractionConfig::default(), &MapReduce::new(1));
        let (b, _) =
            extract_candidates(&wc.corpus, &ExtractionConfig::default(), &MapReduce::new(8));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.pairs, y.pairs);
        }
    }

    #[test]
    fn incoherent_columns_removed() {
        let wc = small_corpus();
        let mr = MapReduce::new(4);
        let (_, stats) = extract_candidates(&wc.corpus, &ExtractionConfig::default(), &mr);
        assert!(
            stats.columns_incoherent > 0,
            "generator injects incoherent columns; none were filtered"
        );
    }

    #[test]
    fn fd_filter_blocks_non_functional_pairs() {
        let mut corpus = mapsynth_corpus::Corpus::new();
        let d = corpus.domain("x");
        // A many-to-many pair in an otherwise coherent context.
        for _ in 0..6 {
            corpus.push_table(
                d,
                vec![
                    (Some("team"), vec!["Bears", "Lions", "Packers", "Vikings"]),
                    (Some("other"), vec!["Lions", "Bears", "Vikings", "Packers"]),
                ],
            );
        }
        // team → opponent changes per table, so FD holds locally here
        // (each left appears once); construct a true violation:
        corpus.push_table(
            d,
            vec![
                (
                    Some("team"),
                    vec!["Bears", "Bears", "Lions", "Lions", "Packers", "Vikings"],
                ),
                (
                    Some("date"),
                    vec!["Lions", "Packers", "Bears", "Vikings", "Bears", "Lions"],
                ),
            ],
        );
        let mr = MapReduce::new(2);
        let (cands, stats) = extract_candidates(
            &corpus,
            &ExtractionConfig {
                min_distinct: 3,
                ..Default::default()
            },
            &mr,
        );
        assert!(stats.pairs_failed_fd >= 2, "stats: {stats:?}");
        // the violating table emitted no candidates
        assert!(cands
            .iter()
            .all(|c| c.source != corpus.tables.last().unwrap().id));
    }

    /// The incremental contract: after a delta, the cache's view of the
    /// candidate set (old minus tombstoned plus added) must exactly
    /// match a fresh extraction of the post-delta corpus — same sources,
    /// same column pairs, same rows, same aggregate stats.
    #[test]
    fn delta_matches_fresh_extraction() {
        let wc = small_corpus();
        let mut corpus = wc.corpus;
        let cfg = ExtractionConfig::default();
        let mr = MapReduce::new(2);
        let (base, _, mut cache) = extract_candidates_cached(&corpus, &cfg, &mr);

        // Remove a spread of tables, add clones of two strongly
        // coherent tables under a new domain (content overlap on
        // purpose; sources chosen so no borderline column flips —
        // flips exercise the renumber path, tested separately below).
        let removed: Vec<TableId> = [3u32, 57, 110, 200].iter().map(|&i| TableId(i)).collect();
        let nd = corpus.domain("delta.example");
        let mut added = Vec::new();
        for &src in &[5u32, 6] {
            let cols: Vec<mapsynth_corpus::Column> = corpus.tables[src as usize].columns.clone();
            added.push(corpus.push_interned_table(nd, cols));
        }

        let delta = cache.apply_delta(&corpus, &added, &removed, &[], &cfg, &mr);
        assert!(!delta.reordered, "this delta must not force a renumber");

        // Survivors in order + added, from the incremental path.
        let tomb: std::collections::HashSet<u32> = delta.tombstoned.iter().copied().collect();
        let mut incremental: Vec<&BinaryTable> =
            base.iter().filter(|c| !tomb.contains(&c.id.0)).collect();
        incremental.extend(delta.added.iter());

        // Fresh extraction of the post-delta corpus.
        let removed_set: std::collections::HashSet<TableId> = removed.into_iter().collect();
        let fresh_corpus = corpus.subset(|tid| !removed_set.contains(&tid));
        let (fresh, fresh_stats) = extract_candidates(&fresh_corpus, &cfg, &mr);

        assert_eq!(incremental.len(), fresh.len(), "candidate count");
        assert_eq!(delta.stats, fresh_stats, "aggregate stats");
        for (a, b) in incremental.iter().zip(&fresh) {
            assert_eq!((a.left_col, a.right_col), (b.left_col, b.right_col));
            // Sym ids (and thus the sym-sorted pair order) differ
            // across corpora; compare the string pair sets.
            let strs = |c: &Corpus, t: &BinaryTable| -> Vec<(String, String)> {
                let mut v: Vec<(String, String)> = t
                    .pairs
                    .iter()
                    .map(|&(l, r)| (c.str_of(l).to_string(), c.str_of(r).to_string()))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(strs(&corpus, a), strs(&fresh_corpus, b));
        }
    }

    /// A delta that pushes a borderline old column *over* the
    /// coherence threshold makes an old table gain a candidate —
    /// tombstone/append patching cannot reproduce a fresh run's
    /// candidate order, so the delta flags `reordered` and
    /// `rebuild_candidates` renumbers. Cloning a weakly coherent table
    /// reliably triggers it (the clone co-occurs with every value of
    /// its source).
    #[test]
    fn borderline_gain_renumbers_to_fresh_order() {
        let wc = small_corpus();
        let mut corpus = wc.corpus;
        let cfg = ExtractionConfig::default();
        let mr = MapReduce::new(2);
        let (base, _, mut cache) = extract_candidates_cached(&corpus, &cfg, &mr);
        let nd = corpus.domain("delta.example");
        let mut added = Vec::new();
        for &src in &[0u32, 1] {
            let cols = corpus.tables[src as usize].columns.clone();
            added.push(corpus.push_interned_table(nd, cols));
        }
        let delta = cache.apply_delta(&corpus, &added, &[], &[], &cfg, &mr);
        assert!(delta.reordered, "borderline flip-up must demand a renumber");
        assert!(delta.coherence_flips > 0);

        let (rebuilt, stats, id_map) = cache.rebuild_candidates(&corpus);
        let (fresh, fresh_stats) = extract_candidates(&corpus, &cfg, &mr);
        assert_eq!(rebuilt.len(), fresh.len(), "candidate count");
        assert_eq!(stats, fresh_stats, "aggregate stats");
        for (a, b) in rebuilt.iter().zip(&fresh) {
            assert_eq!(a.source, b.source);
            assert_eq!((a.left_col, a.right_col), (b.left_col, b.right_col));
            assert_eq!(a.pairs, b.pairs);
        }
        // The id map is monotone (surviving candidates keep their
        // relative order) and covers only pre-delta ids.
        assert!(id_map
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert!(id_map.iter().all(|&(_, n)| (n as usize) < rebuilt.len()));
        let _ = base;
    }

    /// Streaming extraction must be bit-identical to the batch path:
    /// same candidates (ids, sources, rows, headers), same stats, and
    /// a cache that behaves identically under a subsequent delta.
    #[test]
    fn streaming_matches_batch_bit_for_bit() {
        let wc = small_corpus();
        let mut corpus = wc.corpus;
        let cfg = ExtractionConfig::default();
        let mr = MapReduce::new(2);
        let (batch, batch_stats, mut batch_cache) = extract_candidates_cached(&corpus, &cfg, &mr);
        for batch_size in [1usize, 7, 64, 10_000] {
            let mut stream = corpus.stream();
            let (streamed, stream_stats, _) =
                extract_candidates_streaming(&mut stream, &cfg, &mr, batch_size);
            assert_eq!(stream_stats, batch_stats, "batch_size {batch_size}");
            assert_eq!(streamed.len(), batch.len());
            for (a, b) in streamed.iter().zip(&batch) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.source, b.source);
                assert_eq!((a.left_col, a.right_col), (b.left_col, b.right_col));
                assert_eq!(a.pairs, b.pairs);
            }
        }
        // Cache equivalence: the same delta applied to the streaming
        // cache and the batch cache produces identical results.
        let (_, _, mut stream_cache) =
            extract_candidates_streaming(&mut corpus.stream(), &cfg, &mr, 32);
        let removed: Vec<TableId> = vec![TableId(10), TableId(42)];
        let nd = corpus.domain("delta.example");
        let cols = corpus.tables[5].columns.clone();
        let added = vec![corpus.push_interned_table(nd, cols)];
        let da = batch_cache.apply_delta(&corpus, &added, &removed, &[], &cfg, &mr);
        let db = stream_cache.apply_delta(&corpus, &added, &removed, &[], &cfg, &mr);
        assert_eq!(da.stats, db.stats);
        assert_eq!(da.tombstoned, db.tombstoned);
        assert_eq!(da.reordered, db.reordered);
        assert_eq!(da.added.len(), db.added.len());
        for (a, b) in da.added.iter().zip(&db.added) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.pairs, b.pairs);
        }
    }

    /// Streaming extraction over the *generator* source (no
    /// materialized corpus at all) matches extraction over the
    /// generated corpus.
    #[test]
    fn streaming_from_generator_matches_materialized() {
        let cfg_gen = WebConfig {
            tables: 250,
            domains: 30,
            procedural: ProceduralConfig {
                families: 8,
                temporal_families: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let cfg = ExtractionConfig::default();
        let mr = MapReduce::new(2);
        let wc = generate_web(&cfg_gen);
        let (batch, batch_stats) = extract_candidates(&wc.corpus, &cfg, &mr);
        let mut stream = mapsynth_gen::webgen::WebTableStream::new(cfg_gen);
        let (streamed, stream_stats, _) = extract_candidates_streaming(&mut stream, &cfg, &mr, 64);
        assert_eq!(stream_stats, batch_stats);
        assert_eq!(streamed.len(), batch.len());
        for (a, b) in streamed.iter().zip(&batch) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.source, b.source);
            assert_eq!((a.left_col, a.right_col), (b.left_col, b.right_col));
            assert_eq!(a.pairs, b.pairs);
        }
    }

    /// Composing deltas: a second delta over the advanced cache still
    /// matches fresh extraction.
    #[test]
    fn deltas_compose() {
        let wc = small_corpus();
        let mut corpus = wc.corpus;
        let cfg = ExtractionConfig::default();
        let mr = MapReduce::new(2);
        let (base, _, mut cache) = extract_candidates_cached(&corpus, &cfg, &mr);

        let mut tombstoned: std::collections::HashSet<u32> = Default::default();
        let mut appended: Vec<BinaryTable> = Vec::new();
        let mut removed_all: std::collections::HashSet<TableId> = Default::default();

        for step in 0..2 {
            let removed: Vec<TableId> = vec![TableId(20 + step * 31), TableId(99 + step)];
            let nd = corpus.domain(&format!("delta-{step}.example"));
            let src = 5 + step as usize * 7;
            let cols = corpus.tables[src].columns.clone();
            let added = vec![corpus.push_interned_table(nd, cols)];
            let delta = cache.apply_delta(&corpus, &added, &removed, &[], &cfg, &mr);
            assert!(!delta.reordered);
            tombstoned.extend(delta.tombstoned.iter().copied());
            appended.extend(delta.added);
            removed_all.extend(removed);
        }

        let mut incremental: Vec<&BinaryTable> = base
            .iter()
            .chain(appended.iter())
            .filter(|c| !tombstoned.contains(&c.id.0))
            .collect();
        incremental.sort_by_key(|c| c.id.0);

        let fresh_corpus = corpus.subset(|tid| !removed_all.contains(&tid));
        let (fresh, _) = extract_candidates(&fresh_corpus, &cfg, &mr);
        assert_eq!(incremental.len(), fresh.len());
        for (a, b) in incremental.iter().zip(&fresh) {
            assert_eq!((a.left_col, a.right_col), (b.left_col, b.right_col));
        }
    }

    /// A row patch advances the cache to exactly what a fresh
    /// extraction of the patched corpus produces: same candidate set,
    /// same stats, with surviving candidates keeping their ids and
    /// reporting replaced rows.
    #[test]
    fn row_patch_matches_fresh_extraction() {
        let wc = small_corpus();
        let mut corpus = wc.corpus;
        let cfg = ExtractionConfig::default();
        let mr = MapReduce::new(2);
        let (base, _, mut cache) = extract_candidates_cached(&corpus, &cfg, &mr);

        // Pick a table that emitted candidates, swap one row for two
        // new ones (one value reused from another table to overlap).
        let src = base[0].source;
        let t = corpus.table(src);
        let row_of = |c: &Corpus, t: &Table, ri: usize| -> Vec<String> {
            t.columns
                .iter()
                .map(|col| c.str_of(col.values[ri]).to_string())
                .collect()
        };
        let deleted = vec![row_of(&corpus, t, 0)];
        let width = t.width();
        // Insert rows copied from a same-width sibling so the new
        // values already co-occur in the corpus (a row of synthetic
        // strings would legitimately sink the column's coherence and
        // tombstone the candidate instead of replacing it).
        let donor = corpus
            .tables
            .iter()
            .find(|d| d.id != src && d.width() == width && d.rows() >= 2)
            .expect("corpus has a same-width donor table");
        let inserted = vec![row_of(&corpus, donor, 0), row_of(&corpus, donor, 1)];
        let patch = RowPatch {
            table: src,
            deleted,
            inserted,
        };
        corpus.apply_row_patch(&patch);

        let delta = cache.apply_delta(&corpus, &[], &[], &[patch], &cfg, &mr);
        let (fresh, fresh_stats, _) = extract_candidates_cached(&corpus, &cfg, &mr);
        assert_eq!(delta.stats, fresh_stats, "aggregate stats");

        if delta.reordered {
            let (rebuilt, stats, _) = cache.rebuild_candidates(&corpus);
            assert_eq!(stats, fresh_stats);
            assert_eq!(rebuilt.len(), fresh.len());
            for (a, b) in rebuilt.iter().zip(&fresh) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.pairs, b.pairs);
            }
            return;
        }
        // Same corpus, same interner: candidates must match the fresh
        // run bit for bit after swapping in the replaced rows.
        let tomb: std::collections::HashSet<u32> = delta.tombstoned.iter().copied().collect();
        let replaced: std::collections::HashMap<u32, &BinaryTable> =
            delta.replaced.iter().map(|c| (c.id.0, c)).collect();
        let mut incremental: Vec<&BinaryTable> = base
            .iter()
            .map(|c| replaced.get(&c.id.0).copied().unwrap_or(c))
            .filter(|c| !tomb.contains(&c.id.0))
            .collect();
        incremental.extend(delta.added.iter());
        assert_eq!(incremental.len(), fresh.len(), "candidate count");
        assert!(
            !delta.replaced.is_empty(),
            "the patch touched an emitting table, so some candidate must be replaced"
        );
        let fresh_sorted = {
            let mut v: Vec<&BinaryTable> = fresh.iter().collect();
            v.sort_by_key(|c| c.id.0);
            v
        };
        incremental.sort_by_key(|c| c.id.0);
        for (a, b) in incremental.iter().zip(&fresh_sorted) {
            assert_eq!(a.source, b.source);
            assert_eq!((a.left_col, a.right_col), (b.left_col, b.right_col));
            assert_eq!(a.pairs, b.pairs, "rows of candidate {:?}", a.id);
        }
    }

    /// Degenerate patches at the extraction layer: emptying a table
    /// keeps it live with zero candidates, and a patch to a removed
    /// table panics rather than corrupting the cache.
    #[test]
    fn emptying_patch_drops_all_candidates() {
        let wc = small_corpus();
        let mut corpus = wc.corpus;
        let cfg = ExtractionConfig::default();
        let mr = MapReduce::new(2);
        let (base, _, mut cache) = extract_candidates_cached(&corpus, &cfg, &mr);
        let src = base[0].source;
        let t = corpus.table(src);
        let deleted: Vec<Vec<String>> = (0..t.rows())
            .map(|ri| {
                t.columns
                    .iter()
                    .map(|col| corpus.str_of(col.values[ri]).to_string())
                    .collect()
            })
            .collect();
        let patch = RowPatch {
            table: src,
            deleted,
            inserted: vec![],
        };
        corpus.apply_row_patch(&patch);
        assert_eq!(corpus.table(src).rows(), 0);
        let delta = cache.apply_delta(&corpus, &[], &[], &[patch], &cfg, &mr);
        if delta.reordered {
            let (rebuilt, stats, _) = cache.rebuild_candidates(&corpus);
            let (fresh, fresh_stats, _) = extract_candidates_cached(&corpus, &cfg, &mr);
            assert_eq!(stats, fresh_stats);
            assert_eq!(rebuilt.len(), fresh.len());
        } else {
            let (_, fresh_stats, _) = extract_candidates_cached(&corpus, &cfg, &mr);
            assert_eq!(delta.stats, fresh_stats);
        }
        assert!(cache.live_candidates() < base.len());
        assert!(!base.is_empty());
    }

    /// Prune-rate boundary cases: zero pairs (fresh default and empty
    /// corpus), everything pruned, nothing pruned, and inconsistent
    /// counters (merged from mismatched runs) — the rates must stay in
    /// `[0, 1]` in every case, never NaN or negative.
    #[test]
    fn prune_rates_stay_in_unit_interval() {
        let zero = ExtractionStats::default();
        assert_eq!(zero.prune_rate(), 0.0);
        assert_eq!(zero.total_prune_rate(), 0.0);

        let all_pruned = ExtractionStats {
            pairs_possible: 12,
            pairs_considered: 6,
            pairs_failed_fd: 4,
            pairs_numeric_left: 2,
            ..Default::default()
        };
        assert_eq!(all_pruned.prune_rate(), 1.0);
        assert_eq!(all_pruned.total_prune_rate(), 1.0);

        let none_pruned = ExtractionStats {
            pairs_possible: 6,
            pairs_considered: 6,
            candidates: 6,
            ..Default::default()
        };
        assert_eq!(none_pruned.prune_rate(), 0.0);
        assert_eq!(none_pruned.total_prune_rate(), 0.0);

        // More candidates than pairs cannot come out of one extraction
        // (enumerate_pairs asserts the buckets partition), but a caller
        // summing stats across heterogeneous runs can build it; the
        // rate clamps instead of going negative.
        let skewed = ExtractionStats {
            pairs_possible: 2,
            pairs_considered: 2,
            candidates: 5,
            ..Default::default()
        };
        assert_eq!(skewed.prune_rate(), 0.0);
        assert_eq!(skewed.total_prune_rate(), 0.0);
    }

    #[test]
    fn empty_corpus_extracts_nothing_with_zero_rates() {
        let corpus = mapsynth_corpus::Corpus::new();
        let mr = MapReduce::new(1);
        let (cands, stats) = extract_candidates(&corpus, &ExtractionConfig::default(), &mr);
        assert!(cands.is_empty());
        assert_eq!(stats, ExtractionStats::default());
        assert_eq!(stats.prune_rate(), 0.0);
        assert_eq!(stats.total_prune_rate(), 0.0);
    }

    /// The coherence funnel is cumulative: a fresh build records the
    /// sketch-filter work, and a delta's re-extractions only ever add
    /// to it.
    #[test]
    fn funnel_accumulates_across_build_and_deltas() {
        let wc = small_corpus();
        let mut corpus = wc.corpus;
        let cfg = ExtractionConfig::default();
        let mr = MapReduce::new(2);
        let (_, _, mut cache) = extract_candidates_cached(&corpus, &cfg, &mr);
        let base = cache.coherence_funnel();
        assert!(
            base.sketch_rejects + base.list_probes > 0,
            "a real corpus must exercise the coherence pair loop"
        );
        let nd = corpus.domain("delta.example");
        let cols = corpus.tables[5].columns.clone();
        let added = vec![corpus.push_interned_table(nd, cols)];
        cache.apply_delta(&corpus, &added, &[], &[], &cfg, &mr);
        let after = cache.coherence_funnel();
        assert!(after.sketch_rejects >= base.sketch_rejects);
        assert!(
            after.list_probes + after.sketch_rejects > base.list_probes + base.sketch_rejects,
            "the added table's extraction must add funnel work"
        );
    }

    #[test]
    #[should_panic(expected = "is not live")]
    fn patch_to_removed_table_panics() {
        let wc = small_corpus();
        let mut corpus = wc.corpus;
        let cfg = ExtractionConfig::default();
        let mr = MapReduce::new(1);
        let (_, _, mut cache) = extract_candidates_cached(&corpus, &cfg, &mr);
        cache.apply_delta(&corpus, &[], &[TableId(0)], &[], &cfg, &mr);
        let patch = RowPatch {
            table: TableId(0),
            deleted: vec![],
            inserted: vec![],
        };
        corpus.apply_row_patch(&patch);
        cache.apply_delta(&corpus, &[], &[], &[patch], &cfg, &mr);
    }
}
