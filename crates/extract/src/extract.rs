//! Candidate extraction (paper Algorithm 1), parallelized over tables.

use crate::filters::{approx_fd_holds, column_passes, numeric_fraction};
use mapsynth_corpus::{
    column_coherence_excluding, BinaryId, BinaryTable, CoherenceConfig, Corpus, GlobalColId,
    ValueIndex,
};
use mapsynth_mapreduce::MapReduce;

/// Extraction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExtractionConfig {
    /// Minimum average-NPMI column coherence (Equation 2). Columns
    /// scoring below are dropped. Mixed-content columns land near −1
    /// (their values co-occur nowhere); coherent columns in *sparse*
    /// corpora still average below 0 because most value pairs have no
    /// co-occurrence evidence at all, so the threshold sits well below
    /// zero rather than at it.
    pub min_coherence: f64,
    /// Approximate-FD threshold θ (Definition 2), default 0.95.
    pub fd_theta: f64,
    /// Minimum distinct values per column.
    pub min_distinct: usize,
    /// Maximum average cell length (free-text rejection).
    pub max_avg_len: usize,
    /// Reject *left* columns that are ≥ this fraction short numerics
    /// (rank columns, years). The paper prunes numeric relationships
    /// before curation (§4.3); doing it here also keeps the candidate
    /// graph small. Set above 1.0 to disable.
    pub max_left_numeric: f64,
    /// Column-coherence sampling (Equation 2 cost control).
    pub coherence: CoherenceConfig,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self {
            min_coherence: -0.5,
            fd_theta: 0.95,
            min_distinct: 4,
            max_avg_len: 60,
            max_left_numeric: 0.8,
            coherence: CoherenceConfig::default(),
        }
    }
}

/// Counters describing what extraction did (paper: "around 78% \[of\]
/// candidates can be filtered out with these methods").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExtractionStats {
    /// Tables scanned.
    pub tables: usize,
    /// Columns scanned.
    pub columns: usize,
    /// Columns dropped by structural checks (distinct count, length).
    pub columns_structural: usize,
    /// Columns dropped by PMI coherence.
    pub columns_incoherent: usize,
    /// Ordered column pairs the table could produce (before any
    /// filtering): `2·C(width, 2)` per table.
    pub pairs_possible: usize,
    /// Ordered column pairs considered after column filtering.
    pub pairs_considered: usize,
    /// Pairs dropped by the FD filter.
    pub pairs_failed_fd: usize,
    /// Pairs dropped by the numeric-left filter.
    pub pairs_numeric_left: usize,
    /// Candidates emitted.
    pub candidates: usize,
}

impl ExtractionStats {
    /// Fraction of FD-checked pairs that were pruned.
    pub fn prune_rate(&self) -> f64 {
        if self.pairs_considered == 0 {
            return 0.0;
        }
        1.0 - self.candidates as f64 / self.pairs_considered as f64
    }

    /// Fraction of *all possible* ordered column pairs pruned by the
    /// combined column + FD filters — the paper's "around 78% \[of\]
    /// candidates can be filtered out with these methods".
    pub fn total_prune_rate(&self) -> f64 {
        if self.pairs_possible == 0 {
            return 0.0;
        }
        1.0 - self.candidates as f64 / self.pairs_possible as f64
    }
}

/// Run candidate extraction over the corpus (paper Algorithm 1).
///
/// Returns candidates with stable ids (`BinaryId` in table order) and
/// aggregate stats. Parallelized with [`MapReduce::par_map`]; output is
/// deterministic.
pub fn extract_candidates(
    corpus: &Corpus,
    cfg: &ExtractionConfig,
    mr: &MapReduce,
) -> (Vec<BinaryTable>, ExtractionStats) {
    let index = ValueIndex::build(corpus);

    // Global column ids are assigned in (table, column) order; track
    // each table's first column id for coherence exclusion.
    let mut first_col: Vec<u32> = Vec::with_capacity(corpus.tables.len());
    let mut next = 0u32;
    for t in &corpus.tables {
        first_col.push(next);
        next += t.width() as u32;
    }

    /// (left col, right col, raw row pairs) per emitted candidate.
    type CandidateRows = (u16, u16, Vec<(mapsynth_corpus::Sym, mapsynth_corpus::Sym)>);
    struct TableOutput {
        pairs: Vec<CandidateRows>,
        stats: ExtractionStats,
    }

    let inputs: Vec<usize> = (0..corpus.tables.len()).collect();
    let outputs: Vec<TableOutput> = mr.par_map(&inputs, |&ti| {
        let table = &corpus.tables[ti];
        let width = table.width();
        let mut stats = ExtractionStats {
            tables: 1,
            pairs_possible: width * width.saturating_sub(1),
            ..Default::default()
        };
        // Column filtering (PMI + structural).
        let mut kept: Vec<usize> = Vec::new();
        for (ci, col) in table.columns.iter().enumerate() {
            stats.columns += 1;
            if !column_passes(corpus, col, cfg.min_distinct, cfg.max_avg_len) {
                stats.columns_structural += 1;
                continue;
            }
            let gid = GlobalColId(first_col[ti] + ci as u32);
            let coherence = column_coherence_excluding(&index, &col.distinct(), cfg.coherence, gid);
            if coherence < cfg.min_coherence {
                stats.columns_incoherent += 1;
                continue;
            }
            kept.push(ci);
        }
        // Ordered pair enumeration + FD filtering.
        let mut pairs = Vec::new();
        for &i in &kept {
            for &j in &kept {
                if i == j {
                    continue;
                }
                stats.pairs_considered += 1;
                let (left, right) = (&table.columns[i], &table.columns[j]);
                if numeric_fraction(corpus, left) >= cfg.max_left_numeric {
                    stats.pairs_numeric_left += 1;
                    continue;
                }
                let (ok, _) = approx_fd_holds(corpus, left, right, cfg.fd_theta);
                if !ok {
                    stats.pairs_failed_fd += 1;
                    continue;
                }
                let rows: Vec<_> = left
                    .values
                    .iter()
                    .copied()
                    .zip(right.values.iter().copied())
                    .collect();
                stats.candidates += 1;
                pairs.push((i as u16, j as u16, rows));
            }
        }
        TableOutput { pairs, stats }
    });

    let mut all = Vec::new();
    let mut stats = ExtractionStats::default();
    for (ti, out) in outputs.into_iter().enumerate() {
        merge_stats(&mut stats, &out.stats);
        let table = &corpus.tables[ti];
        for (i, j, rows) in out.pairs {
            let id = BinaryId(all.len() as u32);
            all.push(
                BinaryTable::new(id, table.id, table.domain, i, j, rows).with_headers(
                    table.columns[i as usize].header,
                    table.columns[j as usize].header,
                ),
            );
        }
    }
    (all, stats)
}

fn merge_stats(into: &mut ExtractionStats, from: &ExtractionStats) {
    into.tables += from.tables;
    into.columns += from.columns;
    into.columns_structural += from.columns_structural;
    into.columns_incoherent += from.columns_incoherent;
    into.pairs_possible += from.pairs_possible;
    into.pairs_considered += from.pairs_considered;
    into.pairs_failed_fd += from.pairs_failed_fd;
    into.pairs_numeric_left += from.pairs_numeric_left;
    into.candidates += from.candidates;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth_gen::procedural::ProceduralConfig;
    use mapsynth_gen::{generate_web, WebConfig};

    fn small_corpus() -> mapsynth_gen::webgen::WebCorpus {
        generate_web(&WebConfig {
            tables: 250,
            domains: 30,
            procedural: ProceduralConfig {
                families: 8,
                temporal_families: 1,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn extracts_candidates_and_prunes() {
        let wc = small_corpus();
        let mr = MapReduce::new(4);
        let (cands, stats) = extract_candidates(&wc.corpus, &ExtractionConfig::default(), &mr);
        assert!(!cands.is_empty());
        assert_eq!(stats.tables, wc.corpus.len());
        assert!(
            stats.total_prune_rate() > 0.5,
            "total prune rate {:.2} too low (paper ~0.78)",
            stats.total_prune_rate()
        );
        // Every candidate has both orientations possible but only FD-
        // satisfying ones; ids are sequential.
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.id.0 as usize, i);
            assert!(c.len() >= 2);
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let wc = small_corpus();
        let (a, _) =
            extract_candidates(&wc.corpus, &ExtractionConfig::default(), &MapReduce::new(1));
        let (b, _) =
            extract_candidates(&wc.corpus, &ExtractionConfig::default(), &MapReduce::new(8));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.pairs, y.pairs);
        }
    }

    #[test]
    fn incoherent_columns_removed() {
        let wc = small_corpus();
        let mr = MapReduce::new(4);
        let (_, stats) = extract_candidates(&wc.corpus, &ExtractionConfig::default(), &mr);
        assert!(
            stats.columns_incoherent > 0,
            "generator injects incoherent columns; none were filtered"
        );
    }

    #[test]
    fn fd_filter_blocks_non_functional_pairs() {
        let mut corpus = mapsynth_corpus::Corpus::new();
        let d = corpus.domain("x");
        // A many-to-many pair in an otherwise coherent context.
        for _ in 0..6 {
            corpus.push_table(
                d,
                vec![
                    (Some("team"), vec!["Bears", "Lions", "Packers", "Vikings"]),
                    (Some("other"), vec!["Lions", "Bears", "Vikings", "Packers"]),
                ],
            );
        }
        // team → opponent changes per table, so FD holds locally here
        // (each left appears once); construct a true violation:
        corpus.push_table(
            d,
            vec![
                (
                    Some("team"),
                    vec!["Bears", "Bears", "Lions", "Lions", "Packers", "Vikings"],
                ),
                (
                    Some("date"),
                    vec!["Lions", "Packers", "Bears", "Vikings", "Bears", "Lions"],
                ),
            ],
        );
        let mr = MapReduce::new(2);
        let (cands, stats) = extract_candidates(
            &corpus,
            &ExtractionConfig {
                min_distinct: 3,
                ..Default::default()
            },
            &mr,
        );
        assert!(stats.pairs_failed_fd >= 2, "stats: {stats:?}");
        // the violating table emitted no candidates
        assert!(cands
            .iter()
            .all(|c| c.source != corpus.tables.last().unwrap().id));
    }
}
