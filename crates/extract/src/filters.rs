//! Column and column-pair filters.

use mapsynth_corpus::{Column, Interner, Sym};
use mapsynth_text::normalize;
use std::collections::HashMap;

/// Result of an approximate-FD check on one ordered column pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FdCheck {
    /// Fraction of rows in the largest FD-consistent subset
    /// (the `θ` of Definition 2 this pair achieves).
    pub support: f64,
    /// Number of distinct left values.
    pub distinct_left: usize,
    /// Total rows considered (after dropping empty cells).
    pub rows: usize,
}

/// Approximate functional dependency check (paper Definition 2 applied
/// locally, §3.2): `left →θ right` holds if keeping, for every left
/// value, only its majority right value retains at least `θ` of rows.
///
/// Values are compared on their normalized forms so that cosmetic
/// variation ("CA" vs "ca") does not manufacture violations.
pub fn approx_fd_holds(
    strs: &Interner,
    left: &Column,
    right: &Column,
    theta: f64,
) -> (bool, FdCheck) {
    debug_assert_eq!(left.len(), right.len());
    // norm cache: Sym → normalized string (shared across both columns).
    let mut norm_cache: HashMap<Sym, String> = HashMap::new();
    let mut norm = |s: Sym, strs: &Interner| -> String {
        norm_cache
            .entry(s)
            .or_insert_with(|| normalize(strs.resolve(s)))
            .clone()
    };

    // group: left → (right → count)
    let mut groups: HashMap<String, HashMap<String, usize>> = HashMap::new();
    let mut rows = 0usize;
    for (&l, &r) in left.values.iter().zip(&right.values) {
        let ln = norm(l, strs);
        let rn = norm(r, strs);
        if ln.is_empty() || rn.is_empty() {
            continue;
        }
        rows += 1;
        *groups.entry(ln).or_default().entry(rn).or_default() += 1;
    }
    if rows == 0 {
        return (
            false,
            FdCheck {
                support: 0.0,
                distinct_left: 0,
                rows: 0,
            },
        );
    }
    let kept: usize = groups
        .values()
        .map(|rights| rights.values().copied().max().unwrap_or(0))
        .sum();
    let support = kept as f64 / rows as f64;
    let check = FdCheck {
        support,
        distinct_left: groups.len(),
        rows,
    };
    (support >= theta, check)
}

/// Fraction of values in a column that are short numerics. Used for
/// the paper's "additional filtering ... to further prune out numeric
/// and temporal relationships" (§4.3).
pub fn numeric_fraction(strs: &Interner, col: &Column) -> f64 {
    if col.is_empty() {
        return 0.0;
    }
    let numeric = col
        .values
        .iter()
        .filter(|&&v| {
            let s = strs.resolve(v).trim();
            !s.is_empty() && s.len() <= 9 && s.chars().all(|c| c.is_ascii_digit())
        })
        .count();
    numeric as f64 / col.len() as f64
}

/// Structural sanity checks for a candidate column: enough distinct
/// values, not dominated by one value, values not overly long.
pub fn column_passes(
    strs: &Interner,
    col: &Column,
    min_distinct: usize,
    max_avg_len: usize,
) -> bool {
    let distinct = col.distinct();
    if distinct.len() < min_distinct {
        return false;
    }
    let total_len: usize = col.values.iter().map(|&v| strs.resolve(v).len()).sum();
    if total_len / col.len().max(1) > max_avg_len {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapsynth_corpus::{Corpus, TableId};

    fn corpus_with(cols: Vec<(Option<&str>, Vec<&str>)>) -> Corpus {
        let mut c = Corpus::new();
        let d = c.domain("t");
        c.push_table(d, cols);
        c
    }

    #[test]
    fn exact_fd_holds() {
        let c = corpus_with(vec![
            (None, vec!["a", "b", "c", "a"]),
            (None, vec!["1", "2", "3", "1"]),
        ]);
        let t = c.table(TableId(0));
        let (ok, chk) = approx_fd_holds(&c.interner, &t.columns[0], &t.columns[1], 0.95);
        assert!(ok);
        assert_eq!(chk.support, 1.0);
        assert_eq!(chk.distinct_left, 3);
    }

    #[test]
    fn violation_fails_strictly_but_passes_approximately() {
        // 19 consistent rows + 1 violation → support 0.95.
        let mut lefts = vec!["x"; 19];
        lefts.push("a");
        let mut rights = vec!["1"; 19];
        rights.push("2");
        // make 'a' map consistently, violation via duplicate 'x'.
        let mut lefts2 = lefts.clone();
        lefts2[0] = "x";
        let mut rights2 = rights.clone();
        rights2[0] = "9"; // x → 9 once, x → 1 eighteen times
        let c = corpus_with(vec![(None, lefts2), (None, rights2)]);
        let t = c.table(TableId(0));
        let (ok95, chk) = approx_fd_holds(&c.interner, &t.columns[0], &t.columns[1], 0.95);
        assert!(ok95, "support {}", chk.support);
        let (ok99, _) = approx_fd_holds(&c.interner, &t.columns[0], &t.columns[1], 0.99);
        assert!(!ok99);
    }

    #[test]
    fn portland_ambiguity_tolerated() {
        // city→state with one ambiguous duplicate out of 20 rows.
        let mut cities = vec![
            "Chicago", "Houston", "Seattle", "Denver", "Boston", "Miami", "Austin", "Dallas",
            "Phoenix", "Atlanta", "Detroit", "Memphis", "Tucson", "Omaha", "Tampa", "Raleigh",
            "Spokane", "Boise", "Portland",
        ];
        let mut states = vec![
            "Illinois",
            "Texas",
            "Washington",
            "Colorado",
            "Massachusetts",
            "Florida",
            "Texas",
            "Texas",
            "Arizona",
            "Georgia",
            "Michigan",
            "Tennessee",
            "Arizona",
            "Nebraska",
            "Florida",
            "North Carolina",
            "Washington",
            "Idaho",
            "Oregon",
        ];
        cities.push("Portland");
        states.push("Maine");
        let c = corpus_with(vec![(None, cities), (None, states)]);
        let t = c.table(TableId(0));
        let (ok, chk) = approx_fd_holds(&c.interner, &t.columns[0], &t.columns[1], 0.95);
        assert!(ok, "support {}", chk.support);
    }

    #[test]
    fn normalization_prevents_fake_violations() {
        let c = corpus_with(vec![
            (None, vec!["California", "CALIFORNIA", "california"]),
            (None, vec!["CA", "ca", "CA"]),
        ]);
        let t = c.table(TableId(0));
        let (ok, chk) = approx_fd_holds(&c.interner, &t.columns[0], &t.columns[1], 1.0);
        assert!(ok);
        assert_eq!(chk.distinct_left, 1);
    }

    #[test]
    fn non_functional_pair_rejected() {
        // home team → date: many-to-many.
        let c = corpus_with(vec![
            (None, vec!["Bears", "Bears", "Lions", "Lions"]),
            (None, vec!["10-12", "10-19", "10-12", "10-26"]),
        ]);
        let t = c.table(TableId(0));
        let (ok, chk) = approx_fd_holds(&c.interner, &t.columns[0], &t.columns[1], 0.95);
        assert!(!ok);
        assert!(chk.support < 0.8);
    }

    #[test]
    fn numeric_fraction_detects_rank_columns() {
        let c = corpus_with(vec![
            (None, vec!["1", "2", "3", "4"]),
            (None, vec!["alpha", "beta", "gamma", "delta"]),
        ]);
        let t = c.table(TableId(0));
        assert_eq!(numeric_fraction(&c.interner, &t.columns[0]), 1.0);
        assert_eq!(numeric_fraction(&c.interner, &t.columns[1]), 0.0);
    }

    #[test]
    fn column_passes_rejects_constant_and_long() {
        let c = corpus_with(vec![
            (None, vec!["same", "same", "same"]),
            (
                None,
                vec![
                    "this is a very long free text cell that goes on and on and on and on and on",
                    "another very long blob of mixed prose that is not a value at all, really",
                    "yet another excessively long sentence标 that should be rejected by length",
                ],
            ),
            (None, vec!["a", "b", "c"]),
        ]);
        let t = c.table(TableId(0));
        assert!(!column_passes(&c.interner, &t.columns[0], 3, 50));
        assert!(!column_passes(&c.interner, &t.columns[1], 3, 50));
        assert!(column_passes(&c.interner, &t.columns[2], 3, 50));
    }
}
