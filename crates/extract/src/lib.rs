//! # mapsynth-extract
//!
//! Step 1 of the pipeline (paper §3, Algorithm 1): extract candidate
//! two-column tables from the corpus.
//!
//! From each table `T = {C1 … Cn}` all `2·C(n,2)` ordered column pairs
//! are candidates, but most are useless. Two filters prune them:
//!
//! 1. **PMI column filter** (§3.1) — drop columns whose values rarely
//!    co-occur elsewhere in the corpus (mis-extracted or mixed-content
//!    columns like Table 7's "Location");
//! 2. **approximate-FD filter** (§3.2) — keep only ordered pairs whose
//!    left column functionally determines the right on ≥ θ of rows
//!    (θ = 0.95, tolerating name ambiguity like Portland → Oregon /
//!    Maine).
//!
//! The paper reports ~78% of candidates pruned at this stage; the
//! [`ExtractionStats`] returned alongside the candidates exposes the
//! same measurement.
//!
//! ```
//! use mapsynth_corpus::Corpus;
//! use mapsynth_extract::{extract_candidates, ExtractionConfig};
//! use mapsynth_mapreduce::MapReduce;
//!
//! let mut corpus = Corpus::new();
//! for i in 0..4 {
//!     let d = corpus.domain(&format!("site-{i}.org"));
//!     corpus.push_table(d, vec![
//!         (Some("country"), vec!["United States", "Canada", "Japan", "Germany", "France"]),
//!         (Some("code"), vec!["USA", "CAN", "JPN", "DEU", "FRA"]),
//!     ]);
//! }
//! let (candidates, stats) =
//!     extract_candidates(&corpus, &ExtractionConfig::default(), &MapReduce::new(2));
//! assert_eq!(stats.tables, 4);
//! assert!(!candidates.is_empty());
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod extract;
pub mod filters;

pub use extract::{
    extract_candidates, extract_candidates_cached, extract_candidates_masked,
    extract_candidates_streaming, ExtractionCache, ExtractionConfig, ExtractionDelta,
    ExtractionStats,
};
pub use filters::{approx_fd_holds, column_passes, numeric_fraction, FdCheck};
