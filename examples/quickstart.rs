//! Quickstart: synthesize mapping tables from a tiny hand-built corpus.
//!
//! ```text
//! cargo run --release -p mapsynth-eval --example quickstart
//! ```
//!
//! Builds a corpus of small web-style tables about country codes —
//! fragments, synonyms, one dirty cell, and a second conflicting code
//! standard — and runs the three-step pipeline (paper Figure 1).

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_corpus::Corpus;

fn main() {
    let mut corpus = Corpus::new();

    // Fragments of (country → ISO3) from different sites, with
    // different synonym styles.
    let d1 = corpus.domain("codes.example.org");
    corpus.push_table(
        d1,
        vec![
            (
                Some("name"),
                vec!["United States", "Canada", "Mexico", "Brazil", "Japan"],
            ),
            (Some("code"), vec!["USA", "CAN", "MEX", "BRA", "JPN"]),
        ],
    );
    let d2 = corpus.domain("travel.example.com");
    corpus.push_table(
        d2,
        vec![
            (
                Some("country"),
                vec!["Japan", "South Korea", "China", "India", "Thailand"],
            ),
            (Some("iso"), vec!["JPN", "KOR", "CHN", "IND", "THA"]),
        ],
    );
    let d3 = corpus.domain("stats.example.net");
    corpus.push_table(
        d3,
        vec![
            // Synonymous mentions: a different surface form of Korea.
            (
                Some("name"),
                vec!["Korea, Republic of", "China", "India", "Brazil", "Mexico"],
            ),
            (Some("code"), vec!["KOR", "CHN", "IND", "BRA", "MEX"]),
        ],
    );
    // A reference list covering everything (the containment hub).
    let wiki = corpus.domain("wikipedia.example.org");
    corpus.push_table(
        wiki,
        vec![
            (
                Some("Country"),
                vec![
                    "United States",
                    "Canada",
                    "Mexico",
                    "Brazil",
                    "Japan",
                    "South Korea",
                    "China",
                    "India",
                    "Thailand",
                    "Germany",
                ],
            ),
            (
                Some("ISO 3166-1 Alpha-3"),
                vec![
                    "USA", "CAN", "MEX", "BRA", "JPN", "KOR", "CHN", "IND", "THA", "DEU",
                ],
            ),
        ],
    );
    // A *different* code standard sharing the same countries — the
    // negative FD evidence must keep it out of the ISO cluster.
    let ioc = corpus.domain("olympics.example.org");
    for _ in 0..2 {
        corpus.push_table(
            ioc,
            vec![
                (
                    Some("country"),
                    vec!["Germany", "Netherlands", "Greece", "India", "Japan"],
                ),
                (Some("ioc"), vec!["GER", "NED", "GRE", "IND", "JPN"]),
            ],
        );
    }
    // The hub also lists Netherlands/Greece with their ISO codes, so
    // the two standards conflict on three countries.
    corpus.push_table(
        wiki,
        vec![
            (
                Some("Country"),
                vec![
                    "Germany",
                    "Netherlands",
                    "Greece",
                    "India",
                    "Japan",
                    "Canada",
                ],
            ),
            (
                Some("ISO 3166-1 Alpha-3"),
                vec!["DEU", "NLD", "GRC", "IND", "JPN", "CAN"],
            ),
        ],
    );

    let output = Pipeline::new(PipelineConfig::default()).run(&corpus);

    println!(
        "corpus: {} tables -> {} candidates -> {} edges ({} negative) -> {} mappings\n",
        corpus.len(),
        output.candidates,
        output.edges,
        output.negative_edges,
        output.mappings.len()
    );
    for (i, m) in output.mappings.iter().take(6).enumerate() {
        println!(
            "mapping #{i}: {} pairs from {} tables across {} domains",
            m.len(),
            m.source_tables,
            m.domains
        );
        for (l, r) in m.pair_strs().take(12) {
            println!("    {l:<22} -> {r}");
        }
        println!();
    }
}
