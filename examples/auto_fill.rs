//! Auto-fill (paper §1, Table 4): the user types one example state for
//! a list of cities; the system discovers the (city → state) intent
//! from synthesized mappings and fills the rest.
//!
//! ```text
//! cargo run --release -p mapsynth-eval --example auto_fill
//! ```

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_apps::{autofill, MappingIndex};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::{generate_web, WebConfig};

fn main() {
    let wc = generate_web(&WebConfig {
        tables: 800,
        domains: 80,
        procedural: ProceduralConfig {
            families: 8,
            ..Default::default()
        },
        ..Default::default()
    });
    let output = Pipeline::new(PipelineConfig::default()).run(&wc.corpus);
    let index = MappingIndex::build(&output.mappings);

    // Paper Table 4: cities with one example state value given.
    let cities = [
        "San Francisco",
        "Seattle",
        "Los Angeles",
        "Houston",
        "Denver",
    ];
    let states: Vec<Option<&str>> = vec![Some("California"), None, None, None, None];

    println!("{:<16}State", "City");
    for (c, s) in cities.iter().zip(&states) {
        println!("{c:<16}{}", s.unwrap_or("?"));
    }

    match autofill(&index, &cities, &states, 1) {
        Some(fill) => {
            println!("\nintent matched mapping #{}; auto-filled:", fill.mapping);
            for (row, value) in &fill.filled {
                println!("  {:<16}{}", cities[*row], value);
            }
        }
        None => println!("\nno mapping consistent with the example"),
    }
}
