//! Auto-correction (paper §1, Table 3): detect and fix a column that
//! mixes full US state names with postal abbreviations, using a
//! synthesized (state → abbreviation) mapping.
//!
//! ```text
//! cargo run --release -p mapsynth-eval --example auto_correct
//! ```

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_apps::{autocorrect, MappingIndex};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::{generate_web, WebConfig};

fn main() {
    let wc = generate_web(&WebConfig {
        tables: 800,
        domains: 80,
        procedural: ProceduralConfig {
            families: 8,
            ..Default::default()
        },
        ..Default::default()
    });
    let output = Pipeline::new(PipelineConfig::default()).run(&wc.corpus);
    let index = MappingIndex::build(&output.mappings);

    // Paper Table 3: employee residence states, two rows entered as
    // abbreviations.
    let employees = [
        ("2910", "Brent, Steven", "California"),
        ("1923", "Morris, Peggy", "Washington"),
        ("1928", "Raynal, David", "Oregon"),
        ("2491", "Crispin, Neal", "CA"),
        ("4850", "Wells, William", "WA"),
    ];
    let state_column: Vec<&str> = employees.iter().map(|(_, _, s)| *s).collect();

    println!("{:<6}{:<18}Residence State", "ID", "Employee");
    for (id, name, state) in &employees {
        println!("{id:<6}{name:<18}{state}");
    }
    match autocorrect(&index, &state_column, 2) {
        Some(fixes) => {
            println!("\ninconsistent representations detected; suggested corrections:");
            for fix in fixes {
                println!("  row {}: {:?} -> {:?}", fix.row + 1, fix.from, fix.to);
            }
        }
        None => println!("\ncolumn is consistent"),
    }
}
