//! Auto-join (paper §1, Table 5): join a stock table keyed by ticker
//! with a political-contributions table keyed by company name, through
//! a synthesized (company → ticker) bridge mapping.
//!
//! ```text
//! cargo run --release -p mapsynth-eval --example auto_join
//! ```

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_apps::{autojoin, MappingIndex};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::{generate_web, WebConfig};

fn main() {
    // Synthesize mappings from a generated web corpus.
    let wc = generate_web(&WebConfig {
        tables: 1600,
        domains: 80,
        procedural: ProceduralConfig {
            families: 8,
            ..Default::default()
        },
        ..Default::default()
    });
    let output = Pipeline::new(PipelineConfig::default()).run(&wc.corpus);
    let index = MappingIndex::build(&output.mappings);
    println!("indexed {} synthesized mappings", index.len());

    // Paper Table 5: left table lists stocks by market cap (keyed by
    // ticker); right table lists companies by political contributions
    // (keyed by name). No shared key — a bridge is needed.
    let stocks = [
        ("GE", "255.88B"),
        ("WMT", "212.13B"),
        ("MSFT", "380.15B"),
        ("ORCL", "255.88B"),
        ("UPS", "94.27B"),
    ];
    let contributions = [
        ("General Electric", "$59,456,031"),
        ("Walmart", "$47,497,295"),
        ("Oracle", "$34,216,308"),
        ("Microsoft Corp", "$33,910,357"),
        ("United Parcel Service", "$33,752,009"),
    ];

    let left_keys: Vec<&str> = stocks.iter().map(|(t, _)| *t).collect();
    let right_keys: Vec<&str> = contributions.iter().map(|(n, _)| *n).collect();

    match autojoin(&index, &left_keys, &right_keys, 0.5) {
        Some(join) => {
            println!(
                "bridge mapping #{} found (left keys on {} side); joined rows:",
                join.mapping,
                if join.left_keys_on_left {
                    "left"
                } else {
                    "right"
                }
            );
            println!(
                "{:<8}{:<12}{:<24}Total '89-'13",
                "Ticker", "Market Cap", "Company"
            );
            for (li, ri) in &join.rows {
                println!(
                    "{:<8}{:<12}{:<24}{}",
                    stocks[*li].0, stocks[*li].1, contributions[*ri].0, contributions[*ri].1
                );
            }
        }
        None => println!("no bridge mapping covers both key sets"),
    }
}
