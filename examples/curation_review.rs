//! Curation workflow (paper §4.3): synthesize from a web-scale corpus,
//! rank clusters by popularity, and print the review queue a human
//! curator would see — including a synonym-rich mapping like the
//! paper's Table 6.
//!
//! ```text
//! cargo run --release -p mapsynth-eval --example curation_review
//! ```

use mapsynth::curate;
use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_gen::{generate_web, WebConfig};
use std::collections::HashMap;

fn main() {
    let wc = generate_web(&WebConfig {
        tables: 1500,
        domains: 150,
        ..Default::default()
    });
    let output = Pipeline::new(PipelineConfig::default()).run(&wc.corpus);

    let summary = curate::summarize(&output.mappings, 4);
    println!(
        "{} synthesized mappings; {} backed by >= 4 independent domains \
         (mean {:.1} tables, {:.1} domains)\n",
        summary.total, summary.above_floor, summary.mean_tables, summary.mean_domains
    );

    println!("curation queue (top 8 by popularity):");
    for (i, m) in output.mappings.iter().take(8).enumerate() {
        let (l, r) = m.pair_strs().next().expect("non-empty mapping");
        println!(
            "  #{:<3} {:>4} pairs  {:>3} tables  {:>3} domains   e.g. ({l} -> {r})",
            i + 1,
            m.len(),
            m.source_tables,
            m.domains,
        );
    }

    // Table 6 flavour: the synthesized country->ISO3 cluster carries
    // synonymous mentions of the same entity (the generator's ground
    // truth tells us which cluster that is).
    let gt = wc
        .registry
        .get("country->iso3")
        .expect("registry case")
        .ground_truth_pairs();
    let best = output.mappings.iter().max_by_key(|m| {
        m.pair_strs()
            .filter(|&(l, r)| gt.contains(&(l.to_string(), r.to_string())))
            .count()
    });
    if let Some(m) = best {
        let mut by_right: HashMap<&str, Vec<&str>> = HashMap::new();
        for (l, r) in m.pair_strs() {
            by_right.entry(r).or_default().push(l);
        }
        let mut rich: Vec<(&str, Vec<&str>)> =
            by_right.into_iter().filter(|(_, v)| v.len() >= 3).collect();
        rich.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));
        println!("\nsynonym-rich entries of the country->ISO3 cluster (paper Table 6):");
        for (code, names) in rich.into_iter().take(4) {
            println!("  {code}:");
            for n in names {
                println!("      {n}");
            }
        }
    }
}
