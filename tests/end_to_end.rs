//! Workspace integration test: generator → extraction → synthesis →
//! applications, end to end.

use mapsynth::pipeline::{Pipeline, PipelineConfig};
use mapsynth_apps::{autocorrect, autofill, autojoin, MappingIndex};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::{generate_web, WebConfig};

fn corpus() -> mapsynth_gen::webgen::WebCorpus {
    generate_web(&WebConfig {
        tables: 1200,
        domains: 100,
        procedural: ProceduralConfig {
            families: 10,
            temporal_families: 1,
            ..Default::default()
        },
        ..Default::default()
    })
}

#[test]
fn pipeline_to_applications_round_trip() {
    let wc = corpus();
    let output = Pipeline::new(PipelineConfig::default()).run(&wc.corpus);
    assert!(output.mappings.len() > 50);
    assert!(
        output.negative_edges > 0,
        "conflicting standards must produce negatives"
    );

    let index = MappingIndex::build(&output.mappings);

    // Auto-correct (paper Table 3): mixed state names/abbreviations.
    let column = ["California", "Washington", "Oregon", "Texas", "CA", "WA"];
    let fixes = autocorrect(&index, &column, 2).expect("mixed column detected");
    assert!(fixes.iter().any(|f| f.from == "CA" && f.to == "california"));
    assert!(fixes.iter().any(|f| f.from == "WA" && f.to == "washington"));

    // Auto-fill (paper Table 4): one example state, fill the rest.
    let cities = ["San Francisco", "Seattle", "Houston", "Denver"];
    let target = [Some("California"), None, None, None];
    let fill = autofill(&index, &cities, &target, 1).expect("intent discovered");
    let filled: std::collections::HashMap<usize, String> = fill.filled.into_iter().collect();
    assert_eq!(filled[&1], "washington");
    assert_eq!(filled[&2], "texas");
    assert_eq!(filled[&3], "colorado");

    // Auto-join (paper Table 5): tickers to company names.
    let left = ["MSFT", "AAPL", "GE", "ORCL"];
    let right = [
        "Microsoft Corporation",
        "Apple Inc",
        "General Electric",
        "Oracle Corporation",
    ];
    let join = autojoin(&index, &left, &right, 0.5).expect("bridge mapping found");
    assert!(join.rows.len() >= 3, "joined {} rows", join.rows.len());
    assert!(join.rows.contains(&(0, 0)), "MSFT must join Microsoft");
}

#[test]
fn synthesis_beats_no_synthesis_on_recall() {
    // The core claim of the paper's §5.2: synthesized mappings have far
    // better recall than the best single table, at comparable
    // precision.
    use mapsynth_eval::{web_benchmark_attested, PreparedWeb, ResultScorer};

    let wc = corpus();
    let prepared = PreparedWeb::prepare(wc, 0.5, 0);
    let cases = web_benchmark_attested(&prepared.registry, &prepared.emitted_pairs, 80);

    let synth = prepared.run_synthesis(
        &mapsynth::SynthesisConfig {
            theta_edge: 0.5,
            ..Default::default()
        },
        mapsynth::Resolver::Algorithm4,
    );
    let single =
        mapsynth_baselines::single_table::single_tables(prepared.space(), prepared.tables());

    let mean = |results: &[mapsynth_baselines::RelationResult]| {
        let scorer = ResultScorer::new(results);
        let scores: Vec<_> = cases.iter().map(|c| scorer.best_for(&c.gt).0).collect();
        (
            scores.iter().map(|s| s.f).sum::<f64>() / scores.len() as f64,
            scores.iter().map(|s| s.recall).sum::<f64>() / scores.len() as f64,
        )
    };
    let (f_synth, r_synth) = mean(&synth);
    let (f_single, r_single) = mean(&single);
    assert!(
        r_synth > r_single + 0.05,
        "synthesis recall {r_synth:.3} vs single-table {r_single:.3}"
    );
    assert!(
        f_synth > f_single,
        "synthesis F {f_synth:.3} vs single-table {f_single:.3}"
    );
}

#[test]
fn deterministic_outputs_across_runs() {
    let wc1 = corpus();
    let wc2 = corpus();
    let out1 = Pipeline::new(PipelineConfig::default()).run(&wc1.corpus);
    let out2 = Pipeline::new(PipelineConfig::default()).run(&wc2.corpus);
    assert_eq!(out1.mappings.len(), out2.mappings.len());
    for (a, b) in out1.mappings.iter().zip(&out2.mappings).take(50) {
        assert_eq!(a.materialize_pairs(), b.materialize_pairs());
    }
}

#[test]
fn scoring_deterministic_across_worker_counts() {
    // The scoring rewrite (shared views + approximate-match memo) must
    // keep the engine's determinism contract: identical compatibility
    // graphs — edge sets *and* weights — for any worker count.
    use mapsynth::pipeline::SynthesisSession;

    let wc = corpus();
    let mut graphs = Vec::new();
    for workers in [1usize, 2, 8] {
        let mut session = SynthesisSession::new(PipelineConfig {
            workers,
            ..Default::default()
        });
        session.prepare(&wc.corpus);
        graphs.push((workers, session.graph(&session.config().synthesis)));
    }
    let (_, reference) = &graphs[0];
    for (workers, g) in &graphs[1..] {
        assert_eq!(
            g.edges.len(),
            reference.edges.len(),
            "{workers} workers: edge count"
        );
        for (a, b) in g.edges.iter().zip(&reference.edges) {
            assert_eq!(a, b, "{workers} workers: edge mismatch");
        }
        assert_eq!(g.negative_edges(), reference.negative_edges());
        assert_eq!(g.positive_edges(), reference.positive_edges());
    }
}

#[test]
fn stage_artifacts_reused_across_resolvers() {
    // The staged-engine contract: prepare stages 1–3 once, then derive
    // every resolver variant from the same extraction + value space +
    // scored pairs, producing results identical to fresh full runs.
    use mapsynth::pipeline::{Resolver, SynthesisSession};

    let wc = corpus();
    let mut shared = SynthesisSession::new(PipelineConfig::default());
    shared.prepare(&wc.corpus);
    let base = shared.config().synthesis;
    let scored_before: *const _ = shared.scores().expect("prepared").scored.as_ptr();

    for resolver in [Resolver::Algorithm4, Resolver::MajorityVote, Resolver::None] {
        let from_shared = shared.synthesize(&base, resolver);
        // Per-stage timings stay observable on every variant run; the
        // graph stage carries the (shared) scoring cost, so it is
        // strictly positive even though only the filter re-ran.
        assert!(from_shared.timings.graph > std::time::Duration::ZERO);
        assert!(from_shared.timings.total >= from_shared.timings.conflict);

        // A fresh session running the same variant from scratch.
        let mut fresh = SynthesisSession::new(PipelineConfig::default());
        fresh.prepare(&wc.corpus);
        let from_fresh = fresh.synthesize(&base, resolver);

        assert_eq!(
            from_shared.mappings.len(),
            from_fresh.mappings.len(),
            "{resolver:?}: mapping count"
        );
        for (a, b) in from_shared.mappings.iter().zip(&from_fresh.mappings) {
            assert_eq!(
                a.materialize_pairs(),
                b.materialize_pairs(),
                "{resolver:?}: pair content"
            );
            assert_eq!(a.domains, b.domains);
            assert_eq!(a.source_tables, b.source_tables);
        }
        assert_eq!(from_shared.edges, from_fresh.edges);
        assert_eq!(from_shared.partitions, from_fresh.partitions);
    }

    // The shared session never re-ran stages 1–3.
    assert_eq!(
        shared.scores().expect("prepared").scored.as_ptr(),
        scored_before,
        "scored pairs must not be recomputed across variants"
    );

    // Resolvers actually differ in effect: without resolution at least
    // as many residual conflicts survive as with Algorithm 4.
    let resolved = shared.synthesize(&base, Resolver::Algorithm4);
    let raw = shared.synthesize(&base, Resolver::None);
    let conflicts = |ms: &[mapsynth::SynthesizedMapping]| -> usize {
        ms.iter().map(|m| m.conflicting_lefts()).sum()
    };
    assert!(conflicts(&raw.mappings) >= conflicts(&resolved.mappings));
}

#[test]
fn delta_tombstones_mappings_end_to_end() {
    // The tombstone edge case, all the way to the serving layer:
    // deleting the last tables supporting a mapping must drop it from
    // the next published snapshot — while untouched mappings survive
    // the incremental publish verbatim.
    use mapsynth::delta::CorpusDelta;
    use mapsynth::pipeline::{Resolver, SynthesisSession};
    use mapsynth_serve::{MappingService, SnapshotBuilder};

    let wc = corpus();
    let mut corpus = wc.corpus;
    let mut session = SynthesisSession::new(PipelineConfig::default());
    session.prepare(&corpus);
    let base = session.config().synthesis;
    let run = session.synthesize(&base, Resolver::Algorithm4);

    let service = MappingService::new();
    service.publish(SnapshotBuilder::from_synthesized(&run.mappings).build());

    // Pick a well-supported mapping and find the source tables backing
    // it; removing those tables removes its last support.
    let victim = run
        .mappings
        .iter()
        .find(|m| m.source_tables >= 2 && m.len() >= 4)
        .expect("a multi-table mapping exists");
    let victim_pairs: Vec<(String, String)> = victim.materialize_pairs();
    let tables = &session.values().expect("prepared").tables;
    let removed: Vec<mapsynth_corpus::TableId> = victim
        .member_tables
        .iter()
        .map(|&ti| tables[ti as usize].source)
        .collect();
    let n_removed = removed.len();

    let report = session
        .apply_delta(
            &corpus,
            &CorpusDelta {
                added: vec![],
                removed,
                patches: vec![],
            },
        )
        .expect("valid delta");
    assert_eq!(report.tables_removed, n_removed);
    let after = session.synthesize(&base, Resolver::Algorithm4);
    let (_, stats) = service.publish_delta(&after.mappings);
    assert!(stats.removed > 0, "the victim mapping must be retired");
    assert!(
        stats.unchanged > after.mappings.len() / 2,
        "most mappings must survive the delta publish untouched"
    );

    // The victim's pairs are no longer served in any one mapping.
    let snap = service.snapshot();
    let victim_still_served = after.mappings.iter().any(|m| {
        let got: Vec<(String, String)> = m.materialize_pairs();
        got == victim_pairs && m.source_tables == victim.source_tables
    });
    assert!(
        !victim_still_served,
        "mapping must not survive removal of its last supporting tables"
    );
    // And a forward probe for a pair unique to the victim misses or
    // resolves through a different (still-supported) mapping set.
    assert_eq!(snap.mapping_count(), after.mappings.len());

    // The incremental session still matches a fresh batch run.
    let mut fresh = SynthesisSession::new(PipelineConfig::default());
    fresh.prepare(&session.live_corpus(&corpus));
    let fresh_run = fresh.synthesize(&base, Resolver::Algorithm4);
    assert_eq!(after.mappings.len(), fresh_run.mappings.len());
    for (a, b) in after.mappings.iter().zip(&fresh_run.mappings) {
        assert_eq!(a.materialize_pairs(), b.materialize_pairs());
    }

    // Push a replacement crawl re-asserting the victim relation; the
    // next delta + publish serves it again.
    let mats: Vec<Vec<(String, String)>> = vec![victim_pairs.clone(); 3];
    let mut added = Vec::new();
    for (i, rows) in mats.iter().enumerate() {
        let d = corpus.domain(&format!("recrawl-{i}.example"));
        let (l, r): (Vec<&str>, Vec<&str>) =
            rows.iter().map(|(l, r)| (l.as_str(), r.as_str())).unzip();
        added.push(corpus.push_table(d, vec![(Some("left"), l), (Some("right"), r)]));
    }
    session
        .apply_delta(
            &corpus,
            &CorpusDelta {
                added,
                removed: vec![],
                patches: vec![],
            },
        )
        .expect("valid delta");
    let revived = session.synthesize(&base, Resolver::Algorithm4);
    service.publish_delta(&revived.mappings);
    let snap = service.snapshot();
    let (l0, r0) = &victim_pairs[0];
    let hit = snap.lookup_norm(l0).expect("revived mapping serves again");
    assert!(hit.translations().any(|(_, r)| r == r0));
}

#[test]
fn delta_path_deterministic_across_worker_counts_at_scale() {
    // The incremental path must keep the engine's determinism
    // contract at generator scale: identical post-delta mappings for
    // 1, 2 and 8 workers.
    use mapsynth::delta::CorpusDelta;
    use mapsynth::pipeline::{Resolver, SynthesisSession};

    let outputs: Vec<Vec<Vec<(String, String)>>> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            let wc = corpus();
            let mut corpus = wc.corpus;
            let mut session = SynthesisSession::new(PipelineConfig {
                workers,
                ..Default::default()
            });
            session.prepare(&corpus);
            // Remove a spread of tables and re-add clones of two of
            // them under new domains (overlapping content on purpose).
            let removed: Vec<mapsynth_corpus::TableId> =
                (0..10).map(|k| mapsynth_corpus::TableId(k * 97)).collect();
            let mut added = Vec::new();
            for &src in &[7usize, 19] {
                let cols: Vec<(Option<String>, Vec<String>)> = corpus.tables[src]
                    .columns
                    .iter()
                    .map(|c| {
                        (
                            c.header.map(|h| corpus.str_of(h).to_string()),
                            c.values
                                .iter()
                                .map(|&v| corpus.str_of(v).to_string())
                                .collect(),
                        )
                    })
                    .collect();
                let d = corpus.domain("recrawl.example");
                let cols_ref: Vec<(Option<&str>, Vec<&str>)> = cols
                    .iter()
                    .map(|(h, vs)| {
                        (
                            h.as_deref(),
                            vs.iter().map(String::as_str).collect::<Vec<&str>>(),
                        )
                    })
                    .collect();
                added.push(corpus.push_table(d, cols_ref));
            }
            session
                .apply_delta(
                    &corpus,
                    &CorpusDelta {
                        added,
                        removed,
                        patches: vec![],
                    },
                )
                .expect("valid delta");
            let run = session.synthesize(&session.config().synthesis.clone(), Resolver::Algorithm4);
            run.mappings.iter().map(|m| m.materialize_pairs()).collect()
        })
        .collect();
    assert!(!outputs[0].is_empty());
    assert_eq!(outputs[0], outputs[1], "1 vs 2 workers");
    assert_eq!(outputs[0], outputs[2], "1 vs 8 workers");
}
