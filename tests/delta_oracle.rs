//! The incremental-update oracle: property-test that
//! `SynthesisSession::apply_delta` is **bit-identical** to a fresh
//! session on the post-delta corpus, for randomly generated delta
//! sequences — insertions, deletions, re-insertions of identical
//! content, overlapping values, typo'd spellings and synonym folding —
//! and regardless of worker count.
//!
//! This mirrors the `compat::oracle_tests` pattern: generate
//! adversarial inputs, run the production incremental path, and
//! compare against the reference semantics (a from-scratch batch run
//! on [`mapsynth::delta::CorpusDelta::post_corpus`]-style live
//! corpora) pair-for-pair.

use mapsynth::delta::fault::{self, INDUCED_PANIC_MESSAGE};
use mapsynth::delta::{CorpusDelta, DeltaError};
use mapsynth::pipeline::{PipelineConfig, Resolver, SynthesisSession};
use mapsynth_corpus::{Corpus, RowPatch, TableId};
use mapsynth_text::SynonymDict;
use proptest::prelude::*;

/// A generated table: a domain selector, the relation (mapping
/// standard) it asserts, and rows keyed by entity with typo-variant
/// selectors. Codes derive deterministically from `(relation, entity)`
/// so each table is functional (survives the FD filter) while
/// different relations conflict on shared entities — the paper's
/// ISO-vs-IOC shape. Variants introduce typo'd spellings so
/// approximate matching fires, and re-inserted tables frequently
/// collide with previously removed content.
type GenTable = (u8, u8, Vec<(u8, (u8, u8))>);

/// The ground-truth code of `entity` under `relation`.
fn code_of(relation: u8, entity: u8) -> u8 {
    ((entity as u16 * 7 + relation as u16 * 13) % 6) as u8
}

fn left_str(entity: u8, variant: u8) -> String {
    // ≥ 5 chars after compaction so the fractional edit-distance
    // threshold is non-zero and typos land inside it.
    let base = format!("entity number {entity} of the corpus");
    match variant % 4 {
        0 => base,
        1 => base.replace("number", "numbr"),  // deletion
        2 => base.replace("corpus", "korpus"), // substitution
        _ => format!("{base}x"),               // insertion
    }
}

fn right_str(code: u8, variant: u8) -> String {
    let base = format!("mapping code {code}");
    match variant % 3 {
        0 => base,
        1 => base.replace("code", "cod"),
        _ => format!("{base}s"),
    }
}

fn push_gen_table(corpus: &mut Corpus, t: &GenTable) -> TableId {
    let (domain, relation, rows) = t;
    let d = corpus.domain(&format!("domain-{}.org", domain % 5));
    // Weight variant selectors toward the base spelling: corpora where
    // every occurrence is a distinct typo never cohere (and would make
    // the property vacuous — see `generated_corpora_exercise_the_pipeline`).
    let ev_of = |ev: u8| if ev < 9 { 0 } else { ev - 8 };
    let cv_of = |cv: u8| if cv < 6 { 0 } else { cv - 5 };
    let lefts: Vec<String> = rows
        .iter()
        .map(|&(e, (ev, _))| left_str(e, ev_of(ev)))
        .collect();
    let rights: Vec<String> = rows
        .iter()
        .map(|&(e, (_, cv))| right_str(code_of(*relation, e), cv_of(cv)))
        .collect();
    corpus.push_table(
        d,
        vec![
            (Some("entity"), lefts.iter().map(String::as_str).collect()),
            (Some("code"), rights.iter().map(String::as_str).collect()),
        ],
    )
}

fn synonyms() -> SynonymDict {
    // Fold one typo variant into its base spelling for an entity and a
    // code, so class equality fires across different strings.
    let mut dict = SynonymDict::new();
    dict.declare(&left_str(1, 0), &left_str(1, 1));
    dict.declare(&right_str(1, 0), &right_str(1, 1));
    dict
}

/// A generated row patch: a live-table selector, row-index selectors
/// for deletion, and generator-shaped rows (relation + entity rows) to
/// append. Resolved against the live table set and the table's actual
/// rows at application time, so deletions always name real tuples and
/// insertions can duplicate lefts (FD-breaking), overlap other
/// relations' values, or re-introduce typo'd spellings.
type GenPatch = (u16, Vec<u16>, (u8, Vec<(u8, (u8, u8))>));

/// One delta: removal selectors (resolved against the live table set
/// at application time), tables to append, and row patches.
type GenDelta = (Vec<u16>, Vec<GenTable>, Vec<GenPatch>);

fn table_strategy() -> impl Strategy<Value = GenTable> {
    // Rows keyed by entity (unique lefts → functional tables); enough
    // distinct values to clear the structural filter.
    let rows = proptest::collection::btree_map(0u8..10, (0u8..12, 0u8..9), 5..10)
        .prop_map(|m| m.into_iter().collect::<Vec<_>>());
    (0u8..5, 0u8..2, rows)
}

fn tables_strategy() -> impl Strategy<Value = Vec<GenTable>> {
    proptest::collection::vec(table_strategy(), 4..9)
}

fn patch_strategy() -> impl Strategy<Value = GenPatch> {
    let ins_rows = proptest::collection::btree_map(0u8..10, (0u8..12, 0u8..9), 0..4)
        .prop_map(|m| m.into_iter().collect::<Vec<_>>());
    (
        0u16..1000,
        proptest::collection::vec(0u16..1000, 0..8),
        (0u8..2, ins_rows),
    )
}

fn deltas_strategy() -> impl Strategy<Value = Vec<GenDelta>> {
    let delta = (
        proptest::collection::vec(0u16..1000, 0..3),
        proptest::collection::vec(table_strategy(), 0..3),
        proptest::collection::vec(patch_strategy(), 0..3),
    );
    proptest::collection::vec(delta, 1..4)
}

/// Resolve a [`GenPatch`] into a concrete [`RowPatch`] against the
/// current corpus and apply it, or `None` when no live table is
/// eligible (everything removed or already patched this delta).
fn resolve_and_apply_patch(
    corpus: &mut Corpus,
    sel: &GenPatch,
    eligible: &[TableId],
) -> Option<RowPatch> {
    let (tsel, del_sels, (relation, ins_rows)) = sel;
    if eligible.is_empty() {
        return None;
    }
    let tid = eligible[*tsel as usize % eligible.len()];
    let (deleted, width) = {
        let table = corpus.table(tid);
        let nrows = table.rows();
        let mut del_idx: Vec<usize> = del_sels
            .iter()
            .filter(|_| nrows > 0)
            .map(|&s| s as usize % nrows)
            .collect();
        del_idx.sort_unstable();
        del_idx.dedup();
        let deleted: Vec<Vec<String>> = del_idx
            .iter()
            .map(|&r| {
                table
                    .columns
                    .iter()
                    .map(|c| corpus.str_of(c.values[r]).to_string())
                    .collect()
            })
            .collect();
        (deleted, table.width())
    };
    let ev_of = |ev: u8| if ev < 9 { 0 } else { ev - 8 };
    let cv_of = |cv: u8| if cv < 6 { 0 } else { cv - 5 };
    let inserted: Vec<Vec<String>> = ins_rows
        .iter()
        .filter(|_| width == 2)
        .map(|&(e, (ev, cv))| {
            vec![
                left_str(e, ev_of(ev)),
                right_str(code_of(*relation, e), cv_of(cv)),
            ]
        })
        .collect();
    // An empty patch describes no edit — the session rejects it
    // (`DeltaError::EmptyPatch`), so the generator never emits one.
    if deleted.is_empty() && inserted.is_empty() {
        return None;
    }
    let patch = RowPatch {
        table: tid,
        deleted,
        inserted,
    };
    corpus.apply_row_patch(&patch);
    Some(patch)
}

/// The observable output of a synthesis run: curation-ranked
/// materialized mappings with their provenance stats, plus graph and
/// partition counts.
type Observed = (Vec<(Vec<(String, String)>, usize, usize)>, usize, usize);

fn observe(session: &SynthesisSession, resolver: Resolver) -> Observed {
    let run = session.synthesize(&session.config().synthesis.clone(), resolver);
    (
        run.mappings
            .iter()
            .map(|m| (m.materialize_pairs(), m.domains, m.source_tables))
            .collect(),
        run.edges,
        run.partitions,
    )
}

/// Teeth check for the generator: a representative instance must make
/// it through extraction and synthesis with real mappings — otherwise
/// the property below would hold vacuously on empty outputs.
#[test]
fn generated_corpora_exercise_the_pipeline() {
    let mut corpus = Corpus::new();
    for domain in 0..6u8 {
        for relation in 0..2u8 {
            let rows: Vec<(u8, (u8, u8))> =
                (0..8).map(|e| (e, (e % 4, (e + domain) % 3))).collect();
            push_gen_table(&mut corpus, &(domain, relation, rows));
        }
    }
    let mut session = SynthesisSession::new(PipelineConfig::default()).with_synonyms(synonyms());
    session.prepare(&corpus);
    let (mappings, edges, _) = observe(&session, Resolver::Algorithm4);
    assert!(
        !mappings.is_empty(),
        "generator shape must synthesize mappings"
    );
    assert!(edges > 0, "generator shape must produce graph edges");
}

/// Teeth check for the patch generator: resolved against a concrete
/// corpus, the selectors must produce real row edits that replace live
/// candidates — otherwise the row-patch arm of the property would hold
/// vacuously.
#[test]
fn generated_patches_exercise_the_row_delta_path() {
    let mut corpus = Corpus::new();
    for domain in 0..6u8 {
        for relation in 0..2u8 {
            let rows: Vec<(u8, (u8, u8))> =
                (0..8).map(|e| (e, (e % 4, (e + domain) % 3))).collect();
            push_gen_table(&mut corpus, &(domain, relation, rows));
        }
    }
    let mut session = SynthesisSession::new(PipelineConfig::default()).with_synonyms(synonyms());
    session.prepare(&corpus);
    let alive: Vec<TableId> = (0..corpus.len() as u32).map(TableId).collect();

    // Delete two rows of one table, insert one typo'd row into it.
    let sel: GenPatch = (3, vec![0, 5], (1, vec![(9, (10, 7))]));
    let patch = resolve_and_apply_patch(&mut corpus, &sel, &alive).expect("eligible tables");
    assert_eq!(patch.deleted.len(), 2);
    assert_eq!(patch.inserted.len(), 1);
    let report = session
        .apply_delta(
            &corpus,
            &CorpusDelta {
                added: vec![],
                removed: vec![],
                patches: vec![patch],
            },
        )
        .expect("valid delta");
    assert_eq!(report.tables_patched, 1);
    assert!(
        report.candidates_replaced + report.candidates_added + report.candidates_tombstoned >= 1,
        "a real row edit must move at least one candidate"
    );
    let live_corpus = session.live_corpus(&corpus);
    let mut fresh = SynthesisSession::new(PipelineConfig::default()).with_synonyms(synonyms());
    fresh.prepare(&live_corpus);
    for resolver in [Resolver::Algorithm4, Resolver::MajorityVote, Resolver::None] {
        assert_eq!(observe(&session, resolver), observe(&fresh, resolver));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// The tentpole invariant: after every delta in a random sequence —
    /// table additions, removals, and row-granular patches, mixed —
    /// the incremental session's output is bit-identical to a fresh
    /// batch session on the live corpus — across worker counts (the
    /// incremental side runs at a sampled worker count, the oracle
    /// always at 1, so the comparison also proves the delta path's
    /// parallel determinism). On the side it checks the unified
    /// candidate counters: `live_after = live_before + added −
    /// tombstoned` must hold on both the in-place and the renumber
    /// path, with the fresh session's candidate list as ground truth.
    #[test]
    fn prop_delta_equals_fresh(
        base in tables_strategy(),
        deltas in deltas_strategy(),
        worker_sel in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][worker_sel];
        let mut corpus = Corpus::new();
        for t in &base {
            push_gen_table(&mut corpus, t);
        }
        let mut session = SynthesisSession::new(PipelineConfig {
            workers,
            ..Default::default()
        })
        .with_synonyms(synonyms());
        session.prepare(&corpus);
        let mut alive: Vec<TableId> = (0..corpus.len() as u32).map(TableId).collect();
        let mut expected_live = session
            .extraction()
            .expect("prepared")
            .candidates
            .len();

        for (removal_sel, additions, patch_sels) in &deltas {
            // Resolve removal selectors against the live set.
            let mut removed: Vec<TableId> = Vec::new();
            for &sel in removal_sel {
                let live: Vec<TableId> = alive
                    .iter()
                    .copied()
                    .filter(|t| !removed.contains(t))
                    .collect();
                if live.is_empty() {
                    break;
                }
                let pick = live[sel as usize % live.len()];
                removed.push(pick);
            }
            // Resolve row patches against surviving pre-delta tables
            // (the session rejects patches to removed, added, or
            // twice-patched tables) and apply them to the corpus
            // up front, as the contract requires.
            let mut patches: Vec<RowPatch> = Vec::new();
            for sel in patch_sels {
                let eligible: Vec<TableId> = alive
                    .iter()
                    .copied()
                    .filter(|t| !removed.contains(t) && !patches.iter().any(|p| p.table == *t))
                    .collect();
                if let Some(p) = resolve_and_apply_patch(&mut corpus, sel, &eligible) {
                    patches.push(p);
                }
            }
            let added: Vec<TableId> = additions
                .iter()
                .map(|t| push_gen_table(&mut corpus, t))
                .collect();
            alive.retain(|t| !removed.contains(t));
            alive.extend(added.iter().copied());

            let delta = CorpusDelta { added, removed, patches };
            let report = session
                .apply_delta(&corpus, &delta)
                .expect("generated deltas are valid");

            // Fresh batch oracle on the live corpus, single worker.
            let live_corpus = session.live_corpus(&corpus);
            let mut fresh = SynthesisSession::new(PipelineConfig {
                workers: 1,
                ..Default::default()
            })
            .with_synonyms(synonyms());
            fresh.prepare(&live_corpus);

            // Counter balance: the report's unified counters must track
            // the fresh session's live candidate count exactly.
            prop_assert_eq!(report.tables_patched, delta.patches.len());
            expected_live = expected_live + report.candidates_added - report.candidates_tombstoned;
            prop_assert_eq!(
                expected_live,
                fresh.extraction().expect("prepared").candidates.len(),
                "candidate counters out of balance (added {}, tombstoned {}, replaced {}, reordered {})",
                report.candidates_added,
                report.candidates_tombstoned,
                report.candidates_replaced,
                report.reordered
            );

            for resolver in [Resolver::Algorithm4, Resolver::MajorityVote, Resolver::None] {
                let incremental = observe(&session, resolver);
                let batch = observe(&fresh, resolver);
                prop_assert_eq!(
                    &incremental,
                    &batch,
                    "{:?} diverged after a delta (workers = {})",
                    resolver,
                    workers
                );
            }
        }
    }

    /// Rejection transparency: every [`DeltaError`] — each validation
    /// variant, crafted as a malformed twist on a generated valid
    /// delta, plus a fault-injected panic mid-apply — must leave the
    /// session's observable output (mappings, provenance, graph and
    /// partition counts, live-table count) identical to before the
    /// attempt, across worker counts. After the whole gauntlet the
    /// original delta must replay verbatim and match the fresh batch
    /// oracle, proving the rejections left no hidden residue either.
    #[test]
    fn prop_rejection_leaves_session_intact(
        base in tables_strategy(),
        deltas in deltas_strategy(),
        worker_sel in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][worker_sel];
        let mut corpus = Corpus::new();
        for t in &base {
            push_gen_table(&mut corpus, t);
        }
        let mut session = SynthesisSession::new(PipelineConfig {
            workers,
            ..Default::default()
        })
        .with_synonyms(synonyms());
        session.prepare(&corpus);
        let mut alive: Vec<TableId> = (0..corpus.len() as u32).map(TableId).collect();

        for (removal_sel, additions, patch_sels) in &deltas {
            // Resolve a valid delta exactly as `prop_delta_equals_fresh`
            // does (the corpus is mutated up front, per the contract).
            let pre_alive = alive.clone();
            let mut removed: Vec<TableId> = Vec::new();
            for &sel in removal_sel {
                let live: Vec<TableId> = alive
                    .iter()
                    .copied()
                    .filter(|t| !removed.contains(t))
                    .collect();
                if live.is_empty() {
                    break;
                }
                removed.push(live[sel as usize % live.len()]);
            }
            let mut patches: Vec<RowPatch> = Vec::new();
            for sel in patch_sels {
                let eligible: Vec<TableId> = alive
                    .iter()
                    .copied()
                    .filter(|t| !removed.contains(t) && !patches.iter().any(|p| p.table == *t))
                    .collect();
                if let Some(p) = resolve_and_apply_patch(&mut corpus, sel, &eligible) {
                    patches.push(p);
                }
            }
            let added: Vec<TableId> = additions
                .iter()
                .map(|t| push_gen_table(&mut corpus, t))
                .collect();
            alive.retain(|t| !removed.contains(t));
            alive.extend(added.iter().copied());
            let delta = CorpusDelta { added, removed, patches };

            let before: Vec<Observed> = [Resolver::Algorithm4, Resolver::MajorityVote, Resolver::None]
                .into_iter()
                .map(|r| observe(&session, r))
                .collect();
            let live_before = session.live_tables();
            let survivor = pre_alive.first().copied();
            let empty_patch = |t: TableId| RowPatch {
                table: t,
                deleted: vec![],
                inserted: vec![],
            };

            // The gauntlet: one malformed delta per validation variant,
            // each asserted to produce exactly its typed error. The
            // `added` list is carried over where the variant under test
            // sits past the fingerprint check.
            let bogus = TableId(corpus.len() as u32 + 7);
            let err = session
                .apply_delta(&corpus, &CorpusDelta {
                    added: delta.added.clone(),
                    removed: vec![bogus],
                    patches: vec![],
                })
                .unwrap_err();
            prop_assert_eq!(err, DeltaError::UnknownTable { id: bogus });
            if let Some(t) = survivor {
                let err = session
                    .apply_delta(&corpus, &CorpusDelta {
                        added: delta.added.clone(),
                        removed: vec![t, t],
                        patches: vec![],
                    })
                    .unwrap_err();
                prop_assert_eq!(err, DeltaError::DuplicateRemoval { id: t });
                let err = session
                    .apply_delta(&corpus, &CorpusDelta {
                        added: delta.added.clone(),
                        removed: vec![],
                        patches: vec![empty_patch(t)],
                    })
                    .unwrap_err();
                prop_assert_eq!(err, DeltaError::EmptyPatch { id: t });
                let err = session
                    .apply_delta(&corpus, &CorpusDelta {
                        added: delta.added.clone(),
                        removed: vec![t],
                        patches: vec![empty_patch(t)],
                    })
                    .unwrap_err();
                prop_assert_eq!(err, DeltaError::PatchAndRemoveSameDelta { id: t });
                let err = session
                    .apply_delta(&corpus, &CorpusDelta {
                        added: delta.added.clone(),
                        removed: vec![],
                        patches: vec![RowPatch {
                            table: t,
                            deleted: vec![],
                            inserted: vec![vec!["lone value".into()]],
                        }],
                    })
                    .unwrap_err();
                prop_assert_eq!(
                    err,
                    DeltaError::ContradictoryPatch { id: t, width: 1, expected: 2 }
                );
            }
            if !delta.added.is_empty() {
                // Dropping the additions desynchronizes the corpus
                // length from the session's last-seen shape.
                let err = session
                    .apply_delta(&corpus, &CorpusDelta {
                        added: vec![],
                        removed: vec![],
                        patches: vec![],
                    })
                    .unwrap_err();
                prop_assert!(matches!(err, DeltaError::FingerprintMismatch { .. }));
                let mut shifted = delta.added.clone();
                shifted[0] = TableId(shifted[0].0 + 1_000_000);
                let err = session
                    .apply_delta(&corpus, &CorpusDelta {
                        added: shifted.clone(),
                        removed: vec![],
                        patches: vec![],
                    })
                    .unwrap_err();
                prop_assert_eq!(
                    err,
                    DeltaError::AddedIdOutOfOrder {
                        id: shifted[0],
                        expected: shifted[0].0 - 1_000_000,
                    }
                );
            }

            // The valid delta itself, sabotaged: a panic fired past the
            // first artifact mutation must be contained and rolled back.
            fault::arm_induced_panic();
            let err = session.apply_delta(&corpus, &delta).unwrap_err();
            match err {
                DeltaError::ApplyPanicked { ref message } => {
                    prop_assert_eq!(message, INDUCED_PANIC_MESSAGE)
                }
                other => prop_assert!(false, "expected ApplyPanicked, got {:?}", other),
            }
            prop_assert!(!fault::disarm(), "induced fault must be one-shot");

            // None of the rejections may have moved the observation.
            prop_assert_eq!(live_before, session.live_tables());
            let after: Vec<Observed> = [Resolver::Algorithm4, Resolver::MajorityVote, Resolver::None]
                .into_iter()
                .map(|r| observe(&session, r))
                .collect();
            prop_assert_eq!(
                &before,
                &after,
                "a rejected delta changed the session (workers = {})",
                workers
            );

            // Replay the original delta verbatim: it must now apply and
            // land exactly on the fresh batch oracle.
            session
                .apply_delta(&corpus, &delta)
                .expect("replay after contained fault must succeed");
            let live_corpus = session.live_corpus(&corpus);
            let mut fresh = SynthesisSession::new(PipelineConfig {
                workers: 1,
                ..Default::default()
            })
            .with_synonyms(synonyms());
            fresh.prepare(&live_corpus);
            prop_assert_eq!(
                observe(&session, Resolver::Algorithm4),
                observe(&fresh, Resolver::Algorithm4),
                "replayed delta diverged from the oracle (workers = {})",
                workers
            );
        }
    }
}
