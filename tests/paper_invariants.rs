//! Workspace integration test: the paper's qualitative claims hold as
//! invariants of the implementation.

use mapsynth::pipeline::{Pipeline, PipelineConfig, Resolver};
use mapsynth::SynthesisConfig;
use mapsynth_eval::{web_benchmark_attested, PreparedWeb, ResultScorer};
use mapsynth_gen::procedural::ProceduralConfig;
use mapsynth_gen::{generate_enterprise, generate_web, EnterpriseConfig, WebConfig};

fn prepared() -> PreparedWeb {
    let wc = generate_web(&WebConfig {
        tables: 1200,
        domains: 100,
        procedural: ProceduralConfig {
            families: 10,
            temporal_families: 1,
            ..Default::default()
        },
        ..Default::default()
    });
    PreparedWeb::prepare(wc, 0.5, 0)
}

#[test]
fn conflicting_standards_never_share_a_mapping() {
    // ISO vs IOC for countries whose codes differ (Figure 2): after
    // conflict resolution, no multi-table mapping may assert two
    // *non-synonymous* rights for the same left. (Synonymous rights are
    // legitimate — Table 6; single tables keep their θ-approximate
    // ambiguity like Portland → Oregon/Maine by design.)
    let p = prepared();
    // Same feed construction as PreparedWeb::prepare (seed 11).
    let feed = p.registry.partial_synonym_feed(0.5, 11);
    let mappings = p.synthesize(&SynthesisConfig::default(), Resolver::Algorithm4);
    for m in &mappings {
        if m.source_tables < 2 {
            continue;
        }
        let mut by_left: std::collections::HashMap<&str, Vec<&str>> =
            std::collections::HashMap::new();
        for (l, r) in m.pair_strs() {
            by_left.entry(l).or_default().push(r);
        }
        for (l, rights) in by_left {
            for w in rights.windows(2) {
                assert!(
                    feed.are_synonyms(w[0], w[1]),
                    "mapping ({} tables) asserts non-synonymous rights {:?} for left {l:?}",
                    m.source_tables,
                    w
                );
            }
        }
    }
}

#[test]
fn negative_evidence_improves_confusable_cases() {
    // §5.2: SynthesisPos suffers on relations that share lefts with a
    // sibling code standard.
    let p = prepared();
    let cases = web_benchmark_attested(&p.registry, &p.emitted_pairs, 80);
    let cfg = SynthesisConfig {
        theta_edge: 0.5,
        ..Default::default()
    };
    let with_neg = p.run_synthesis(&cfg, Resolver::Algorithm4);
    let without = p.run_synthesis(&cfg.without_negative(), Resolver::Algorithm4);
    let mean_f = |results: &[mapsynth_baselines::RelationResult]| {
        let scorer = ResultScorer::new(results);
        cases
            .iter()
            .map(|c| scorer.best_for(&c.gt).0.f)
            .sum::<f64>()
            / cases.len() as f64
    };
    let f_neg = mean_f(&with_neg);
    let f_pos = mean_f(&without);
    assert!(
        f_neg >= f_pos,
        "negatives must not hurt: with={f_neg:.3} without={f_pos:.3}"
    );
}

#[test]
fn conflict_resolution_raises_precision_without_large_recall_cost() {
    // §5.6 shape: precision up, recall roughly flat.
    let p = prepared();
    let cases = web_benchmark_attested(&p.registry, &p.emitted_pairs, 80);
    let cfg = SynthesisConfig {
        theta_edge: 0.5,
        ..Default::default()
    };
    let resolved = p.run_synthesis(&cfg, Resolver::Algorithm4);
    let raw = p.run_synthesis(&cfg, Resolver::None);
    let mean = |results: &[mapsynth_baselines::RelationResult]| {
        let scorer = ResultScorer::new(results);
        let s: Vec<_> = cases.iter().map(|c| scorer.best_for(&c.gt).0).collect();
        (
            s.iter().map(|x| x.precision).sum::<f64>() / s.len() as f64,
            s.iter().map(|x| x.recall).sum::<f64>() / s.len() as f64,
        )
    };
    let (p_res, r_res) = mean(&resolved);
    let (p_raw, r_raw) = mean(&raw);
    assert!(
        p_res >= p_raw,
        "resolution must not lower precision: {p_res:.3} vs {p_raw:.3}"
    );
    assert!(
        r_res >= r_raw - 0.05,
        "resolution must not cost much recall: {r_res:.3} vs {r_raw:.3}"
    );
}

#[test]
fn enterprise_corpus_synthesizes_high_precision_mappings() {
    // §5.5 shape: enterprise synthesis has high precision relative
    // recall; rich mappings exist with zero KB coverage.
    let ec = generate_enterprise(&EnterpriseConfig {
        tables: 800,
        families: 20,
        ..Default::default()
    });
    let out = Pipeline::new(PipelineConfig::default()).run(&ec.corpus);
    assert!(out.mappings.len() > 20);
    // Multi-table clusters must exist (synthesis happened).
    assert!(out.mappings.iter().any(|m| m.source_tables >= 5));
    // No conflicts after resolution.
    for m in out.mappings.iter().take(50) {
        assert_eq!(m.conflicting_lefts(), 0);
    }
}
