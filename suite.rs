//! Anchor target for the workspace-level `tests/` and `examples/`.
//! All real code lives in `crates/`.
