//! Test-runner plumbing: configuration, case errors, deterministic RNG.

use std::ops::Range;

/// Subset of upstream's `ProptestConfig`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this port trims to keep the suite
        // fast — the workspace's property tests are structural, not
        // statistical.
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; another case is drawn.
    Reject(&'static str),
    /// `prop_assert!` failed; the test panics with this message.
    Fail(String),
}

/// Deterministic per-test-case generator (xoshiro256** seeded by an
/// FNV-1a hash of the test path and the case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test name and case number.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes().chain(case.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // splitmix64 expansion of the hash into four state words.
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `usize` drawn from a half-open range.
    pub fn below_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
