//! The [`Strategy`] trait and the primitive strategies used by this
//! workspace: integer/float ranges, string patterns, tuples, `Just`,
//! and `prop_map`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test values. Upstream separates strategies from
/// value trees (for shrinking); this port generates values directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

/// `&str` literals are string-pattern strategies, as upstream.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        PatternStrategy::parse(self).generate(rng)
    }
}

/// One repeatable unit of a pattern.
#[derive(Clone, Debug)]
enum Atom {
    /// Explicit characters (from a `[...]` class or a literal).
    Class(Vec<char>),
    /// `.` / `\PC`: any printable character, including non-ASCII.
    AnyPrintable,
}

/// A parsed string pattern: atoms with repetition counts.
#[derive(Clone, Debug)]
pub struct PatternStrategy {
    parts: Vec<(Atom, u32, u32)>,
}

/// Sampling pool for `.`/`\PC`: ASCII printables plus a few multi-byte
/// code points so unicode handling gets exercised.
const UNICODE_EXTRAS: &[char] = &['é', 'ß', 'Ω', '中', '🙂', 'ñ', '\u{0301}', 'Ж'];

impl PatternStrategy {
    /// Parse the pattern subset: `[class]`, `.`, `\PC`, literals, each
    /// optionally followed by `{n}` or `{m,n}`.
    pub fn parse(pattern: &str) -> Self {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut parts = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(set)
                }
                '.' => {
                    i += 1;
                    Atom::AnyPrintable
                }
                '\\' => {
                    // Only `\PC` ("not a control char") is supported.
                    assert!(
                        chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                        "unsupported escape in pattern {pattern:?}",
                    );
                    i += 3;
                    Atom::AnyPrintable
                }
                c => {
                    i += 1;
                    Atom::Class(vec![c])
                }
            };
            // Optional {n} / {m,n} repetition.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition"),
                        n.trim().parse().expect("bad repetition"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            parts.push((atom, min, max));
        }
        Self { parts }
    }

    /// Generate one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in &self.parts {
            let n = *min + rng.below(u64::from(max - min) + 1) as u32;
            for _ in 0..n {
                match atom {
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::AnyPrintable => {
                        // Mostly ASCII printable, sometimes wider unicode.
                        if rng.below(8) == 0 {
                            let extra =
                                UNICODE_EXTRAS[rng.below(UNICODE_EXTRAS.len() as u64) as usize];
                            out.push(extra);
                        } else {
                            out.push((0x20u8 + rng.below(0x5f) as u8) as char);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests", 1)
    }

    #[test]
    fn class_pattern_respects_alphabet_and_length() {
        let s = "[a-d]{0,12}";
        let mut r = rng();
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut r);
            assert!(v.chars().count() <= 12);
            assert!(v.chars().all(|c| ('a'..='d').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn mixed_class_with_space() {
        let s = "[A-Za-z ]{5,24}";
        let mut r = rng();
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut r);
            let n = v.chars().count();
            assert!((5..=24).contains(&n), "{v:?}");
            assert!(v.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
        }
    }

    #[test]
    fn printable_patterns_have_no_controls() {
        let mut r = rng();
        for pat in ["\\PC{0,40}", ".{0,24}"] {
            for _ in 0..100 {
                let v = Strategy::generate(&pat, &mut r);
                assert!(v.chars().all(|c| !c.is_control() || c == '\u{0301}'));
            }
        }
    }

    #[test]
    fn ranges_tuples_and_collections() {
        let mut r = rng();
        for _ in 0..200 {
            let v = Strategy::generate(&(0u32..24, 0u32..24), &mut r);
            assert!(v.0 < 24 && v.1 < 24);
            let xs = Strategy::generate(&crate::collection::vec(0usize..20, 0..40), &mut r);
            assert!(xs.len() < 40 && xs.iter().all(|&x| x < 20));
            let m = Strategy::generate(
                &crate::collection::btree_map(0u8..12, 0u8..6, 2..10),
                &mut r,
            );
            assert!(m.len() < 10);
            let f = Strategy::generate(&(0.0f64..1.0), &mut r);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut r = rng();
        let s = (0u8..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v < 10);
        }
    }
}
