//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range and
//! string-pattern strategies, and the
//! [`collection`] combinators. Differences from upstream: cases are
//! generated from a deterministic per-test seed (reproducible runs,
//! no `PROPTEST_*` env handling) and failing inputs are **not
//! shrunk** — the failing value is printed as-is.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`, `btree_map` subset).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Create a strategy generating vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with size drawn
    /// from `size` (post-dedup size may be smaller, as upstream).
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Create a strategy generating maps of `key`/`value` pairs.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below_range(self.size.clone());
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod string {
    //! String-pattern strategies.

    use crate::strategy::{PatternStrategy, Strategy};

    /// Error type mirroring upstream's regex-parse error.
    #[derive(Debug)]
    pub struct Error(pub String);

    /// Strategy generating strings matching a (subset) regex pattern.
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy(PatternStrategy);

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> String {
            self.0.generate(rng)
        }
    }

    /// Build a string strategy from a pattern. Supports the subset
    /// used in this workspace: char classes `[a-z]`, `.`, `\PC`, each
    /// with optional `{m,n}` / `{n}` repetition.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        Ok(RegexGeneratorStrategy(PatternStrategy::parse(pattern)))
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)
     $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __name = concat!(module_path!(), "::", stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempt: u32 = 0;
                while __accepted < __cfg.cases {
                    __attempt += 1;
                    assert!(
                        __attempt <= __cfg.cases.saturating_mul(20) + 100,
                        "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                        __name, __accepted, __cfg.cases,
                    );
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(__name, __attempt);
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __result {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("proptest {} (case {}): {}", __name, __attempt, msg),
                    }
                }
            }
        )*
    };
}

/// Assert inside a proptest body; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}
