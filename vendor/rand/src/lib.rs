//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`, and the slice helpers
//! in [`seq`]. The generator is xoshiro256**, which is not the ChaCha12
//! stream the real `StdRng` uses — sequences differ from upstream, but
//! every consumer in this workspace only relies on determinism per
//! seed, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, splitmix-expanded.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over an interval. The single blanket
/// [`SampleRange`] impl over this trait (rather than per-type range
/// impls) is what lets `gen_range(0..5)` infer its output type from
/// context, exactly like the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty gen_range");
        lo + f64::draw(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi + f64::EPSILON * hi.abs().max(1.0))
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty gen_range");
        lo + f32::draw(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi + f32::EPSILON * hi.abs().max(1.0))
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The `rand::Rng` extension trait (subset).
pub trait Rng: RngCore {
    /// Sample a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as the real rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element (None if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
