//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of criterion its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical
//! analysis it takes a small fixed number of timed samples and prints
//! one line per benchmark:
//!
//! ```text
//! bench <group>/<id>  min <t>  mean <t>  (<samples> samples)
//! ```

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("method", "Synthesis")` → `method/Synthesis`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Conversion of `&str` / `BenchmarkId` into an id, as upstream.
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, one sample per call, `samples` times (after one
    /// untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f());
        for _ in 0..self.samples {
            let t = Instant::now();
            std_black_box(f());
            self.results.push(t.elapsed());
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set samples per benchmark (criterion's statistical sample count;
    /// here: timed invocations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.effective_samples(),
            results: Vec::new(),
        };
        f(&mut b);
        self.report(&id.into_id(), &b.results);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.effective_samples(),
            results: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.into_id(), &b.results);
        self
    }

    /// End the group (upstream finalizes reports here; a no-op).
    pub fn finish(&mut self) {}

    fn effective_samples(&self) -> usize {
        self.sample_size.min(self.criterion.max_samples)
    }

    fn report(&self, id: &str, results: &[Duration]) {
        if results.is_empty() {
            return;
        }
        let min = results.iter().min().unwrap();
        let mean = results.iter().sum::<Duration>() / results.len() as u32;
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  ({n} elems/iter)"),
            Some(Throughput::Bytes(n)) => format!("  ({n} bytes/iter)"),
            None => String::new(),
        };
        println!(
            "bench {}/{id}  min {min:?}  mean {mean:?}  ({} samples){tp}",
            self.name,
            results.len(),
        );
    }
}

/// Entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_MAX_SAMPLES caps work per bench (CI smoke runs).
        let max_samples = std::env::var("CRITERION_MAX_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Self { max_samples }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Define a bench group runner: `criterion_group!(benches, f, g);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench `main`: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` and filter args; this port
            // runs everything.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        // 3 samples + 1 warm-up.
        assert_eq!(runs, 4);
        g.throughput(Throughput::Elements(7));
        g.bench_with_input(BenchmarkId::new("param", 42), &5u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
